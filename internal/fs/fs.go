// Package fs implements Determinator's user-level shared file system
// abstraction (§4.2–4.3 of the paper): every process holds a complete
// replica of a logically shared, weakly consistent file system inside its
// own address space, so the kernel's copy-on-write fork clones it for
// free. Processes operate only on their private replica; at
// synchronization points (wait, explicit sync) the parent runtime
// reconciles a child's replica into its own using per-file versioning
// in the style of Parker et al.'s mutual-inconsistency detection:
//
//   - entries changed on only one side propagate to the other;
//   - entries changed on both sides conflict — the runtime keeps the
//     parent's copy and marks the entry conflicted, failing later opens;
//   - append-only files (console, logs) merge by concatenating both
//     sides' appended tails, so concurrent logging never conflicts.
//
// The on-"disk" format is a byte image (superblock, inode table, one or
// more extent regions) manipulated exclusively through the owning
// space's Env accessors: the file system is ordinary user-space memory,
// which is exactly what makes it replicable, and also why a wild pointer
// write can corrupt it — a trade-off the paper acknowledges (see
// SetProtect).
//
// Beyond the paper's prototype — which had a flat 16-entry root
// directory and never reclaimed extents, a leak its authors document —
// this implementation adds:
//
//   - directories: inodes carry a parent-ino field, names are path
//     components, and Mkdir/ReadDir/Rename operate on slash-separated
//     paths. Reconciliation is keyed by full path, so directory entries
//     propagate, conflict and merge per-entry exactly the way file
//     bytes do.
//   - an extent free list: Unlink, Truncate and extent growth return
//     space to a sorted, coalescing free list in the superblock page,
//     and allocation is deterministic best-fit before bump-allocating.
//   - Compact: a pass intended for synchronization points (after
//     StampFork/ReconcileFrom quiesce, when no child replica is
//     outstanding) that rewrites all live extents in inode order and
//     zeroes everything else, so every replica that performs the same
//     operation history computes a bit-identical image.
//   - image growth: when the current regions are exhausted the image
//     extends itself by mapping a fresh region chained from the
//     superblock's region table, making ErrNoSpace a soft limit up to
//     the configured maximum (FormatGrowable).
//
// The file system remains memory-only (no persistence) and
// single-writer per replica, like the paper's.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Image geometry. All offsets are relative to the FS base address.
const (
	// Magic identifies a formatted image (v2: directories + free list +
	// chained regions).
	Magic = 0xD37F5002

	// DefaultBase is where the uproc runtime places the FS image: a
	// 4 MiB-aligned address far from the shared-memory region.
	DefaultBase vm.Addr = 0x8000_0000
	// DefaultSize is the default image size (the paper's "file system
	// size limited by address space" constraint, in miniature).
	DefaultSize uint64 = 16 << 20

	// NumInodes is the fixed number of inode slots (slot 0 is the root
	// directory).
	NumInodes = 128
	// MaxNameLen is the longest single path component, including the
	// terminating NUL.
	MaxNameLen = 96

	inodeSize  = 128
	inodeTable = vm.PageSize // inode table starts at page 1
	dataStart  = inodeTable + NumInodes*inodeSize

	// GrowChunk is the minimum size of a chained region added when the
	// image grows (requests larger than a chunk get a region big enough
	// to hold them).
	GrowChunk = 1 << 20

	// Superblock field offsets (all uint32, page 0).
	sbMagic     = 0
	sbCursor    = 4  // extent bump cursor (relative to base)
	sbSize      = 8  // currently mapped image size
	sbMaxSize   = 12 // growth ceiling (== sbSize for fixed images)
	sbFreeCount = 16 // live entries in the free table
	sbAllocs    = 20 // extent allocations ever made
	sbReused    = 24 // allocations served from the free list
	sbReusedKB  = 28 // bytes so served, in KiB units to defer wrap
	sbGrows     = 32 // chained regions added
	sbCompacts  = 36 // Compact passes run
	sbRegions   = 40 // entries in the region table
	sbDropped   = 44 // free extents leaked to free-table overflow
	sbGen       = 48 // namespace generation: bumped whenever the (dir, name) → inode map changes

	// regionTable holds up to maxRegions {start,size} pairs describing
	// the chained regions; region 0 is the one Format laid out.
	regionTable = 64
	maxRegions  = 64

	// freeTable holds up to maxFree {off,len} pairs, sorted by offset,
	// filling the rest of the superblock page.
	freeTable = regionTable + maxRegions*8
	maxFree   = (int(vm.PageSize) - freeTable) / 8

	// regionMagic begins the header page of every chained (grown)
	// region, forming a verifiable chain from the superblock.
	regionMagic = 0xD37FAE91

	// Inode field offsets.
	iFlags       = 0
	iVersion     = 4
	iForkVersion = 8
	iSize        = 12
	iForkSize    = 16
	iExtOff      = 20
	iExtCap      = 24
	iParent      = 28
	iName        = 32
)

// Inode flag bits. A slot is in use if it is live or a tombstone;
// tombstones record deletions so that reconciliation can propagate them.
// Unlike the paper's prototype, tombstone slots can be reclaimed — and
// their names scrubbed — by Compact at a quiescent synchronization point.
const (
	flagExists     = 1 << 0 // live entry
	flagAppendOnly = 1 << 1
	flagConflict   = 1 << 2
	flagTomb       = 1 << 3 // deleted since some earlier version
	flagDir        = 1 << 4 // directory
)

// Errors returned by the file API.
var (
	ErrNotFound    = errors.New("fs: file not found")
	ErrExists      = errors.New("fs: file already exists")
	ErrConflict    = errors.New("fs: file has unresolved reconciliation conflict")
	ErrNoSpace     = errors.New("fs: image full")
	ErrNameTaken   = errors.New("fs: no free inode")
	ErrBadName     = errors.New("fs: invalid file name")
	ErrBadOffset   = errors.New("fs: offset out of range")
	ErrIsDir       = errors.New("fs: is a directory")
	ErrNotDir      = errors.New("fs: not a directory")
	ErrDirNotEmpty = errors.New("fs: directory not empty")
)

// FS is a handle on a file system image within the calling space's own
// memory. It holds no authoritative state outside the image itself
// (except the write-protection flag), so any number of handles may be
// attached to the same image; image size and allocation state live in
// the superblock, where replication picks them up for free.
//
// The handle does keep one pure cache: a per-directory entry index
// (dir, name) → inode, so lookups stop scanning the whole inode table
// per path component. The image's namespace generation (sbGen, bumped
// by every operation that changes the map, through any handle) guards
// it: a handle whose cached generation is stale rebuilds the index from
// the table before trusting it, which keeps multiple handles on one
// image coherent. The generation is part of the operation history, so
// replicas that performed the same operations still produce
// bit-identical images.
type FS struct {
	env     *kernel.Env
	base    vm.Addr
	protect bool

	noIndex bool           // SetIndex(false): always scan (benchmarks, ablation)
	idx     map[dirent]int // cached (dir, name) → inode, nil until built
	idxGen  uint32         // sbGen the cache was built/maintained at
}

// dirent keys the per-directory entry index.
type dirent struct {
	dir  int
	name string
}

// SetIndex enables or disables this handle's per-directory entry index
// (enabled by default). Disabling forces the original full-table scan
// on every lookup; results are identical either way — the flag exists
// for the lookup micro-benchmark and the equivalence tests.
func (f *FS) SetIndex(on bool) {
	f.noIndex = !on
	f.idx = nil
}

// nsMutate records a change to the (dir, name) → inode map: the image
// generation is bumped, invalidating every other handle's cache. This
// handle's own cache, if it was current, has the change applied in
// place (apply runs with f.idx non-nil) and stays valid — a handle
// alternating mutations and lookups keeps O(1) lookups instead of
// rebuilding per mutation. A cache already stale (some other handle
// mutated in between) is dropped for rebuild.
func (f *FS) nsMutate(apply func()) {
	cur := f.gu32(sbGen)
	f.pu32(sbGen, cur+1)
	if f.idx != nil && f.idxGen == cur {
		apply()
		f.idxGen = cur + 1
	} else {
		f.idx = nil
	}
}

// SetProtect enables the hardening §4.2 suggests: the image is kept
// read-only between file system operations, so a wild pointer write in a
// buggy program faults instead of silently corrupting the file system —
// restoring the Unix property that corruption requires calling write().
func (f *FS) SetProtect(on bool) {
	f.protect = on
	if on {
		f.env.SetPerm(f.base, f.size(), vm.PermR)
	} else {
		f.env.SetPerm(f.base, f.size(), vm.PermRW)
	}
}

// unlock temporarily re-enables writes for one operation; the returned
// function restores protection over the image's then-current extent
// (the operation may have grown it).
func (f *FS) unlock() func() {
	if !f.protect {
		return func() {}
	}
	f.env.SetPerm(f.base, f.size(), vm.PermRW)
	return func() { f.env.SetPerm(f.base, f.size(), vm.PermR) }
}

// Format initializes an empty fixed-size image at base and returns a
// handle, mapping (and zeroing) [base, base+size) itself.
func Format(env *kernel.Env, base vm.Addr, size uint64) *FS {
	return FormatGrowable(env, base, size, size)
}

// FormatGrowable initializes an empty image of the given initial size
// that may grow, in chained regions, up to maxSize — the paper's
// fixed-image ErrNoSpace becomes a soft limit. The image maps its own
// pages, at format time and whenever it grows.
func FormatGrowable(env *kernel.Env, base vm.Addr, size, maxSize uint64) *FS {
	size = roundPages(size)
	maxSize = roundPages(maxSize)
	if size < dataStart+vm.PageSize {
		panic(fmt.Sprintf("fs: image size %d below minimum %d", size, dataStart+vm.PageSize))
	}
	if maxSize < size {
		maxSize = size
	}
	// Image geometry lives in uint32 superblock fields: a 4 GiB ceiling
	// would silently truncate to 0 and make every write fail ErrNoSpace.
	if maxSize >= 1<<32 {
		panic(fmt.Sprintf("fs: image ceiling %d must be below 4 GiB", maxSize))
	}
	f := &FS{env: env, base: base}
	// Map and zero the whole initial region: stale bytes from a previous
	// image must never read as inodes or free entries.
	env.Zero(base, size, vm.PermRW)
	f.pu32(sbMagic, Magic)
	f.pu32(sbCursor, dataStart)
	f.pu32(sbSize, uint32(size))
	f.pu32(sbMaxSize, uint32(maxSize))
	f.pu32(sbRegions, 1)
	f.pu32(regionTable+0, 0)
	f.pu32(regionTable+4, uint32(size))
	// Slot 0 is the root directory: always live, never reconciled.
	f.iPut(0, iFlags, flagExists|flagDir)
	f.iPut(0, iVersion, 1)
	f.iPut(0, iForkVersion, 1)
	return f
}

// Attach returns a handle on an existing image (after fork or exec).
// mapped is the span the caller knows to be addressable; the image's own
// recorded size must fit inside it, and every chained region header must
// check out, or the image is rejected as corrupt/foreign.
func Attach(env *kernel.Env, base vm.Addr, mapped uint64) (*FS, error) {
	f := &FS{env: env, base: base}
	if f.gu32(sbMagic) != Magic {
		return nil, fmt.Errorf("fs: no image at %#x", base)
	}
	size := f.gu32(sbSize)
	if uint64(size) > mapped {
		return nil, fmt.Errorf("fs: image claims %d bytes but only %d are mapped", size, mapped)
	}
	n := int(f.gu32(sbRegions))
	if n < 1 || n > maxRegions {
		return nil, fmt.Errorf("fs: corrupt region count %d", n)
	}
	end := uint32(0)
	for i := 0; i < n; i++ {
		start := f.gu32(uint32(regionTable + i*8))
		rsize := f.gu32(uint32(regionTable + i*8 + 4))
		if start != end || rsize == 0 {
			return nil, fmt.Errorf("fs: region %d not chained (start %d, prev end %d)", i, start, end)
		}
		if i > 0 && (f.gu32(start) != regionMagic || f.gu32(start+4) != uint32(i)) {
			return nil, fmt.Errorf("fs: region %d header missing", i)
		}
		end = start + rsize
	}
	if end != size {
		return nil, fmt.Errorf("fs: regions cover %d bytes, superblock says %d", end, size)
	}
	// Allocation state must point into the chain too: a damaged cursor
	// would panic on the first allocation, and damaged free entries
	// would hand out extents on top of the metadata pages — the wild
	// writes this layer otherwise guards against.
	regs := f.regions()
	if !insideDataArea(regs, f.gu32(sbCursor), 0) {
		return nil, fmt.Errorf("fs: bump cursor %d outside the region chain", f.gu32(sbCursor))
	}
	if int(f.gu32(sbFreeCount)) > maxFree {
		return nil, fmt.Errorf("fs: free table claims %d entries (max %d)", f.gu32(sbFreeCount), maxFree)
	}
	// Inode extents must point into the chain too: ReconcileFrom reads
	// a replica's extents directly, and a corrupt iExtOff would turn
	// into a machine fault mid-reconcile instead of this error.
	for ino := 1; ino < NumInodes; ino++ {
		fl := f.iGet(ino, iFlags)
		c := f.iGet(ino, iExtCap)
		isFile := fl&flagExists != 0 && fl&flagDir == 0
		if !isFile && c != 0 {
			// Free slots are scrubbed, tombstones freed their extent,
			// directories never own one.
			return nil, fmt.Errorf("fs: inode %d holds an extent it cannot own", ino)
		}
		if isFile {
			if f.iGet(ino, iSize) > c {
				return nil, fmt.Errorf("fs: inode %d size exceeds extent capacity", ino)
			}
			if c != 0 && !insideDataArea(regs, f.iGet(ino, iExtOff), c) {
				return nil, fmt.Errorf("fs: inode %d extent [%d,+%d) outside the region chain",
					ino, f.iGet(ino, iExtOff), c)
			}
		}
	}
	prevEnd := uint32(0)
	for _, e := range f.readFreeList() {
		if e.length == 0 || !insideDataArea(regs, e.off, e.length) {
			return nil, fmt.Errorf("fs: free extent [%d,+%d) outside the region chain", e.off, e.length)
		}
		// The list must be sorted and disjoint: freeExtent's insertion
		// and coalescing assume it, and duplicated entries would hand
		// the same extent to two files.
		if e.off < prevEnd {
			return nil, fmt.Errorf("fs: free extent [%d,+%d) overlaps or disorders the free list", e.off, e.length)
		}
		prevEnd = e.off + e.length
	}
	return f, nil
}

// AttachRestored returns a handle on an image restored from a checkpoint
// without touching memory. Restore must be a pure observation — a
// resumed run's instruction counters must equal the uninterrupted run's
// — so the validating reads Attach performs are skipped here: the
// checkpoint CRC already established the image's integrity when it was
// decoded. Only use this on images that came back through the kernel's
// checkpoint/restore; for forked or foreign images use Attach.
func AttachRestored(env *kernel.Env, base vm.Addr) *FS {
	return &FS{env: env, base: base}
}

// insideDataArea reports whether [off, off+length) lies entirely within
// one region's allocatable span (length 0 checks the bare position).
func insideDataArea(regs []extent, off, length uint32) bool {
	for i, r := range regs {
		if off >= regionDataStart(i, r) && uint64(off)+uint64(length) <= uint64(r.off+r.length) {
			return true
		}
	}
	return false
}

// low-level image accessors (offsets relative to base)

func (f *FS) gu32(off uint32) uint32      { return f.env.ReadU32(f.base + vm.Addr(off)) }
func (f *FS) pu32(off uint32, v uint32)   { f.env.WriteU32(f.base+vm.Addr(off), v) }
func (f *FS) gbytes(off uint32, p []byte) { f.env.Read(f.base+vm.Addr(off), p) }
func (f *FS) pbytes(off uint32, p []byte) { f.env.Write(f.base+vm.Addr(off), p) }

func (f *FS) size() uint64    { return uint64(f.gu32(sbSize)) }
func (f *FS) maxSize() uint64 { return uint64(f.gu32(sbMaxSize)) }

func roundPages(n uint64) uint64 {
	return (n + vm.PageSize - 1) &^ uint64(vm.PageSize-1)
}

func inodeOff(ino int) uint32 { return uint32(inodeTable + ino*inodeSize) }

func (f *FS) iGet(ino int, field uint32) uint32    { return f.gu32(inodeOff(ino) + field) }
func (f *FS) iPut(ino int, field uint32, v uint32) { f.pu32(inodeOff(ino)+field, v) }

// inUse reports whether a slot holds a live entry or a tombstone. This
// is the single authoritative free-slot test: every iteration over the
// inode table goes through it (or through a flag test strictly narrower
// than it), so a freed slot can never surface through lookup or List no
// matter what stale bytes its name field holds.
func (f *FS) inUse(ino int) bool {
	return f.iGet(ino, iFlags)&(flagExists|flagTomb) != 0
}

// freeSlot releases an inode slot, scrubbing the whole record — name
// included — so no later scan can observe a stale entry. The caller must
// already have released the slot's extent.
func (f *FS) freeSlot(ino int) {
	key := dirent{dir: int(f.iGet(ino, iParent)), name: f.name(ino)}
	var zero [inodeSize]byte
	f.pbytes(inodeOff(ino), zero[:])
	f.nsMutate(func() { delete(f.idx, key) })
}

func (f *FS) name(ino int) string {
	var buf [MaxNameLen]byte
	f.gbytes(inodeOff(ino)+iName, buf[:])
	if i := strings.IndexByte(string(buf[:]), 0); i >= 0 {
		return string(buf[:i])
	}
	return string(buf[:])
}

// setName names a freshly allocated slot. Callers set iParent first, so
// the index entry recorded here carries the slot's final key. (Existing
// entries are never renamed in place — Rename moves data to a new slot.)
func (f *FS) setName(ino int, name string) {
	var buf [MaxNameLen]byte
	copy(buf[:], name)
	f.pbytes(inodeOff(ino)+iName, buf[:])
	dir := int(f.iGet(ino, iParent))
	f.nsMutate(func() { f.idx[dirent{dir: dir, name: name}] = ino })
}

// pathOf reconstructs an entry's full path (no leading slash; "" is the
// root) by walking parent links.
func (f *FS) pathOf(ino int) string {
	var parts []string
	for depth := 0; ino != 0 && depth < NumInodes; depth++ {
		parts = append(parts, f.name(ino))
		ino = int(f.iGet(ino, iParent))
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// splitPath validates a slash-separated path and returns its components.
// A leading slash is tolerated; empty, "." and ".." components are not.
func splitPath(path string) ([]string, error) {
	path = strings.TrimPrefix(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, c := range parts {
		if c == "" || c == "." || c == ".." || len(c) >= MaxNameLen {
			return nil, ErrBadName
		}
	}
	return parts, nil
}

// childIn finds the in-use slot for name directly under directory dir
// that satisfies want (a flag mask ANDed against the slot's flags), or
// -1. There is at most one in-use slot per (dir, name), so the indexed
// and scanning paths agree: the index maps (dir, name) to the one
// in-use slot and the want mask is checked live on the hit.
func (f *FS) childIn(dir int, name string, want uint32) int {
	if f.noIndex {
		return f.childInScan(dir, name, want)
	}
	if gen := f.gu32(sbGen); f.idx == nil || f.idxGen != gen {
		f.rebuildIndex(gen)
	}
	ino, ok := f.idx[dirent{dir: dir, name: name}]
	if !ok || f.iGet(ino, iFlags)&want == 0 {
		return -1
	}
	return ino
}

// childInScan is the original full-table lookup, the index's ground
// truth.
func (f *FS) childInScan(dir int, name string, want uint32) int {
	for i := 1; i < NumInodes; i++ {
		if !f.inUse(i) || f.iGet(i, iFlags)&want == 0 {
			continue
		}
		if int(f.iGet(i, iParent)) == dir && f.name(i) == name {
			return i
		}
	}
	return -1
}

// rebuildIndex scans the inode table once and records every in-use
// entry under its (parent, name) key.
func (f *FS) rebuildIndex(gen uint32) {
	f.idx = make(map[dirent]int, NumInodes)
	for i := 1; i < NumInodes; i++ {
		if f.inUse(i) {
			f.idx[dirent{dir: int(f.iGet(i, iParent)), name: f.name(i)}] = i
		}
	}
	f.idxGen = gen
}

// walkDirs resolves a chain of components as live directories, returning
// the final directory's inode.
func (f *FS) walkDirs(parts []string) (int, error) {
	dir := 0
	for _, c := range parts {
		ino := f.childIn(dir, c, flagExists)
		if ino < 0 {
			return -1, ErrNotFound
		}
		if f.iGet(ino, iFlags)&flagDir == 0 {
			return -1, ErrNotDir
		}
		dir = ino
	}
	return dir, nil
}

// resolveParent splits path into its parent directory (which must exist)
// and leaf component.
func (f *FS) resolveParent(path string) (int, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return -1, "", err
	}
	if len(parts) == 0 {
		return -1, "", ErrBadName // the root itself is not an entry
	}
	dir, err := f.walkDirs(parts[:len(parts)-1])
	if err != nil {
		return -1, "", err
	}
	return dir, parts[len(parts)-1], nil
}

// lookup finds the live entry at path, or -1.
func (f *FS) lookup(path string) int {
	dir, leaf, err := f.resolveParent(path)
	if err != nil {
		return -1
	}
	return f.childIn(dir, leaf, flagExists)
}

// lookupAny finds the live or tombstone entry at path, or -1. The
// parent chain is resolved through live directories only: a path under a
// deleted directory is gone.
func (f *FS) lookupAny(path string) int {
	dir, leaf, err := f.resolveParent(path)
	if err != nil {
		return -1
	}
	return f.childIn(dir, leaf, flagExists|flagTomb)
}

func (f *FS) freeInode() int {
	for i := 1; i < NumInodes; i++ {
		if !f.inUse(i) {
			return i
		}
	}
	return -1
}

// --- extent allocation: free list, bump cursor, chained growth ----------------

type extent struct{ off, length uint32 }

func (f *FS) readFreeList() []extent {
	n := int(f.gu32(sbFreeCount))
	if n <= 0 {
		return nil
	}
	if n > maxFree {
		n = maxFree
	}
	words := make([]uint32, 2*n)
	f.env.ReadU32s(f.base+vm.Addr(freeTable), words)
	list := make([]extent, n)
	for i := range list {
		list[i] = extent{words[2*i], words[2*i+1]}
	}
	return list
}

func (f *FS) writeFreeList(list []extent) {
	words := make([]uint32, 2*len(list))
	for i, e := range list {
		words[2*i], words[2*i+1] = e.off, e.length
	}
	if len(words) > 0 {
		f.env.WriteU32s(f.base+vm.Addr(freeTable), words)
	}
	f.pu32(sbFreeCount, uint32(len(list)))
}

// freeExtent returns [off, off+n) to the free list, coalescing with
// adjacent entries. On table overflow the smallest entry is dropped — a
// bounded, deterministic leak that the next Compact recovers anyway.
func (f *FS) freeExtent(off, n uint32) {
	if n == 0 {
		return
	}
	list := f.readFreeList()
	i := sort.Search(len(list), func(i int) bool { return list[i].off >= off })
	list = append(list, extent{})
	copy(list[i+1:], list[i:])
	list[i] = extent{off, n}
	if i+1 < len(list) && list[i].off+list[i].length == list[i+1].off {
		list[i].length += list[i+1].length
		list = append(list[:i+1], list[i+2:]...)
	}
	if i > 0 && list[i-1].off+list[i-1].length == list[i].off {
		list[i-1].length += list[i].length
		list = append(list[:i], list[i+1:]...)
	}
	if len(list) > maxFree {
		drop := 0
		for j := 1; j < len(list); j++ {
			if list[j].length < list[drop].length {
				drop = j
			}
		}
		list = append(list[:drop], list[drop+1:]...)
		f.pu32(sbDropped, f.gu32(sbDropped)+1)
	}
	f.writeFreeList(list)
}

func (f *FS) regions() []extent {
	n := int(f.gu32(sbRegions))
	words := make([]uint32, 2*n)
	f.env.ReadU32s(f.base+vm.Addr(regionTable), words)
	list := make([]extent, n)
	for i := range list {
		list[i] = extent{words[2*i], words[2*i+1]}
	}
	return list
}

// regionDataStart is where allocatable bytes begin within a region:
// after the fixed metadata for region 0, after the header page for
// chained regions.
func regionDataStart(index int, r extent) uint32 {
	if index == 0 {
		return dataStart
	}
	return r.off + vm.PageSize
}

// grow chains a fresh region onto the image, large enough for want
// bytes, reporting success. The new pages are mapped (and zeroed) by the
// image itself — the caller's address space is the disk.
func (f *FS) grow(want uint32) bool {
	size := f.size()
	maxSize := f.maxSize()
	n := int(f.gu32(sbRegions))
	if size >= maxSize || n >= maxRegions {
		return false
	}
	need := roundPages(uint64(want) + vm.PageSize) // payload + header page
	delta := need
	if delta < GrowChunk {
		delta = GrowChunk
	}
	if size+delta > maxSize {
		delta = maxSize - size
	}
	if delta < need {
		return false
	}
	f.env.Zero(f.base+vm.Addr(size), delta, vm.PermRW)
	start := uint32(size)
	f.pu32(start, regionMagic)
	f.pu32(start+4, uint32(n))
	f.pu32(start+8, start)
	f.pu32(uint32(regionTable+n*8), start)
	f.pu32(uint32(regionTable+n*8+4), uint32(delta))
	f.pu32(sbRegions, uint32(n+1))
	f.pu32(sbSize, uint32(size+delta))
	f.pu32(sbGrows, f.gu32(sbGrows)+1)
	return true
}

// allocExtent reserves capacity bytes: deterministic best-fit from the
// free list first (smallest sufficient entry, lowest offset on ties),
// then the bump cursor, growing the image when the current region is
// exhausted. Extents never span regions; a too-small region tail goes
// onto the free list.
func (f *FS) allocExtent(capacity uint32) (uint32, error) {
	list := f.readFreeList()
	best := -1
	for i, e := range list {
		if e.length >= capacity && (best < 0 || e.length < list[best].length) {
			best = i
		}
	}
	if best >= 0 {
		off := list[best].off
		if list[best].length == capacity {
			list = append(list[:best], list[best+1:]...)
		} else {
			list[best].off += capacity
			list[best].length -= capacity
		}
		f.writeFreeList(list)
		f.pu32(sbAllocs, f.gu32(sbAllocs)+1)
		f.pu32(sbReused, f.gu32(sbReused)+1)
		// Exact: capacities are whole pages (canonicalCap), so KiB
		// units lose nothing while keeping the counter wrap-proof.
		f.pu32(sbReusedKB, f.gu32(sbReusedKB)+capacity/1024)
		return off, nil
	}

	cur := f.gu32(sbCursor)
	regs := f.regions()
	ri := regionIndexOf(regs, cur)
	for {
		end := regs[ri].off + regs[ri].length
		if uint64(cur)+uint64(capacity) <= uint64(end) {
			break
		}
		// The cursor's region is exhausted (its remainder, if any, goes
		// to the free list): advance into the next region — after a
		// Compact the cursor may sit regions behind the chain's end —
		// growing the chain only once there is no next region.
		if ri+1 >= len(regs) {
			if !f.grow(capacity) {
				return 0, ErrNoSpace
			}
			regs = f.regions()
		}
		if end > cur {
			f.freeExtent(cur, end-cur)
		}
		ri++
		cur = regionDataStart(ri, regs[ri])
	}
	f.pu32(sbCursor, cur+capacity)
	f.pu32(sbAllocs, f.gu32(sbAllocs)+1)
	return cur, nil
}

// regionIndexOf locates the region whose allocatable span contains the
// bump cursor (a cursor at a region's very end still belongs to it).
func regionIndexOf(regs []extent, cur uint32) int {
	for i, r := range regs {
		if cur >= regionDataStart(i, r) && cur <= r.off+r.length {
			return i
		}
	}
	// A freshly formatted image starts at region 0's data area; the
	// cursor can never escape the chain.
	panic(fmt.Sprintf("fs: bump cursor %d outside every region", cur))
}

// canonicalCap is the deterministic extent capacity for a file of n
// bytes: the smallest power-of-two number of pages that holds it,
// clamped to the image's growth ceiling. Every replica computes the same
// capacity for the same size, which is what lets Compact lay out
// identical images everywhere.
func (f *FS) canonicalCap(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	c := uint64(vm.PageSize)
	for c < uint64(n) {
		c *= 2
	}
	if m := f.maxSize(); c > m {
		c = m
	}
	return uint32(c)
}

// --- the file API -------------------------------------------------------------

// Create makes an empty regular file. Creating over a conflicted entry
// clears the conflict (the "fix the bug and re-run" recovery path).
func (f *FS) Create(path string) error { return f.create(path, 0) }

// CreateAppendOnly makes an empty append-only file: concurrent appends
// from different processes merge rather than conflict (§4.3). The
// runtime uses these for console and log streams.
func (f *FS) CreateAppendOnly(path string) error { return f.create(path, flagAppendOnly) }

// Mkdir makes an empty directory. Parent directories must already
// exist.
func (f *FS) Mkdir(path string) error { return f.create(path, flagDir) }

func (f *FS) create(path string, extra uint32) error {
	defer f.unlock()()
	dir, leaf, err := f.resolveParent(path)
	if err != nil {
		return err
	}
	return f.createIn(dir, leaf, extra)
}

// createIn is create below a resolved parent directory; reconciliation
// reuses it when adopting entries.
func (f *FS) createIn(dir int, leaf string, extra uint32) error {
	if ino := f.childIn(dir, leaf, flagExists|flagTomb); ino >= 0 {
		fl := f.iGet(ino, iFlags)
		switch {
		case fl&flagTomb != 0:
			// Revive a deleted entry: keep the version history so the
			// re-creation reconciles as a change. Tombstones hold no
			// extent (deletion frees it), so the slot is clean. The
			// fork-time size is reset — the deletion severed any
			// relation to fork-time content, so for an append-only
			// file everything written from here counts as appended
			// (a stale fork size made mergeAppends drop or mis-slice
			// the revived content).
			f.iPut(ino, iFlags, flagExists|extra)
			f.iPut(ino, iSize, 0)
			f.iPut(ino, iForkSize, 0)
			f.bump(ino)
			return nil
		case fl&flagConflict != 0:
			// Re-creating a conflicted entry resolves the conflict; the
			// old content's extent is returned to the free list, and
			// the fork-time size resets for the same reason as above.
			// A conflicted directory that still has live entries can
			// only be re-created as a directory (Mkdir clears the
			// flag): silently turning it into a file would orphan its
			// children behind an untraversable path.
			if fl&flagDir != 0 && extra&flagDir == 0 && f.dirHasLive(ino) {
				return ErrDirNotEmpty
			}
			f.freeExtent(f.iGet(ino, iExtOff), f.iGet(ino, iExtCap))
			f.iPut(ino, iExtOff, 0)
			f.iPut(ino, iExtCap, 0)
			f.iPut(ino, iFlags, flagExists|extra)
			f.iPut(ino, iSize, 0)
			f.iPut(ino, iForkSize, 0)
			f.bump(ino)
			return nil
		default:
			return ErrExists
		}
	}
	ino := f.freeInode()
	if ino < 0 {
		return ErrNameTaken
	}
	f.iPut(ino, iParent, uint32(dir)) // parent before name: setName indexes under it
	f.setName(ino, leaf)
	f.iPut(ino, iVersion, 1)
	// ForkVersion 0 makes a freshly created entry count as "changed
	// since fork", so it propagates to the parent at reconciliation.
	f.iPut(ino, iForkVersion, 0)
	f.iPut(ino, iSize, 0)
	f.iPut(ino, iForkSize, 0)
	f.iPut(ino, iExtOff, 0)
	f.iPut(ino, iExtCap, 0)
	// Flags last: until they are set the slot still scans as free, so a
	// failure part-way through initialization can never leave a
	// half-visible entry.
	f.iPut(ino, iFlags, flagExists|extra)
	return nil
}

// bump marks the entry modified by this replica.
func (f *FS) bump(ino int) { f.iPut(ino, iVersion, f.iGet(ino, iVersion)+1) }

// tombstone turns a live entry into a deletion record, releasing its
// extent to the free list. The directory bit survives on the tombstone
// so reconciliation can order directory deletions after their contents'.
func (f *FS) tombstone(ino int) {
	f.freeExtent(f.iGet(ino, iExtOff), f.iGet(ino, iExtCap))
	f.iPut(ino, iExtOff, 0)
	f.iPut(ino, iExtCap, 0)
	f.iPut(ino, iFlags, flagTomb|(f.iGet(ino, iFlags)&flagDir))
	f.iPut(ino, iSize, 0)
	f.bump(ino)
}

// Unlink removes a file or empty directory, leaving a tombstone so the
// deletion propagates at reconciliation. Its extent — unlike the
// paper's prototype — goes straight back to the free list.
func (f *FS) Unlink(path string) error {
	defer f.unlock()()
	ino := f.lookup(path) // never 0: the root has no parent entry to match
	if ino < 0 {
		return ErrNotFound
	}
	if f.iGet(ino, iFlags)&flagDir != 0 && f.dirHasLive(ino) {
		return ErrDirNotEmpty
	}
	f.tombstone(ino)
	return nil
}

func (f *FS) dirHasLive(dir int) bool {
	for i := 1; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&flagExists != 0 && int(f.iGet(i, iParent)) == dir {
			return true
		}
	}
	return false
}

// Rename moves a file or directory — including a non-empty directory,
// transitively — to a new path. Every moved entry decomposes into the
// two operations reconciliation already understands: a tombstone at the
// old path and a from-scratch entry at the new one carrying the data.
// A directory move applies that decomposition to the directory and then
// to each of its entries, parents before children in name order, so the
// whole move propagates between replicas per-entry exactly the way file
// bytes do, with no extra protocol. (A replica that reconciles a
// renamed tree simply sees deletions at the old paths and creations at
// the new ones; concurrent edits under the old path surface as the
// usual modify/delete conflicts.)
func (f *FS) Rename(oldPath, newPath string) error {
	defer f.unlock()()
	ino := f.lookup(oldPath)
	if ino < 0 {
		return ErrNotFound
	}
	fl := f.iGet(ino, iFlags)
	if fl&flagConflict != 0 {
		// Conflicted entries fail later opens until explicitly
		// re-created; renaming one would launder the mark away.
		return ErrConflict
	}
	dir, leaf, err := f.resolveParent(newPath)
	if err != nil {
		return err
	}
	if fl&flagDir != 0 && f.dirHasLive(ino) {
		return f.renameTree(ino, dir, leaf)
	}
	// The destination directory chain must not pass through the entry
	// being moved (only possible for an empty directory onto itself).
	for d := dir; d != 0; d = int(f.iGet(d, iParent)) {
		if d == ino {
			return ErrBadName
		}
	}
	if f.childIn(dir, leaf, flagExists) >= 0 {
		return ErrExists
	}
	_, err = f.moveEntry(ino, dir, leaf)
	return err
}

// moveEntry relocates live entry ino to (dir, leaf): the destination
// adopts the source's data extent wholesale and counts as newly
// changed; the source becomes a plain deletion. It returns the
// destination slot. The caller has validated naming (no live entry at
// the destination, no cycles).
func (f *FS) moveEntry(ino, dir int, leaf string) (int, error) {
	fl := f.iGet(ino, iFlags)
	dst := f.childIn(dir, leaf, flagTomb)
	if dst >= 0 && f.iGet(dst, iFlags)&flagConflict != 0 {
		// A conflicted deletion record at the destination is a recorded
		// divergence: only the explicit re-create recovery may clear it.
		return -1, ErrConflict
	}
	if dst < 0 {
		dst = f.freeInode()
		if dst < 0 {
			return -1, ErrNameTaken
		}
		f.iPut(dst, iParent, uint32(dir)) // parent before name: setName indexes under it
		f.setName(dst, leaf)
		f.iPut(dst, iVersion, 0)
		f.iPut(dst, iForkVersion, 0)
		f.iPut(dst, iForkSize, 0)
	}
	// ForkSize resets even on a reused tombstone slot: none of the
	// moved content existed at this path at fork time.
	f.iPut(dst, iExtOff, f.iGet(ino, iExtOff))
	f.iPut(dst, iExtCap, f.iGet(ino, iExtCap))
	f.iPut(dst, iSize, f.iGet(ino, iSize))
	f.iPut(dst, iForkSize, 0)
	v := f.iGet(dst, iVersion)
	if sv := f.iGet(ino, iVersion); sv > v {
		v = sv
	}
	f.iPut(dst, iVersion, v+1)
	f.iPut(dst, iFlags, flagExists|(fl&(flagAppendOnly|flagDir)))
	f.iPut(ino, iExtOff, 0)
	f.iPut(ino, iExtCap, 0)
	f.iPut(ino, iFlags, flagTomb|(fl&flagDir))
	f.iPut(ino, iSize, 0)
	f.bump(ino)
	return dst, nil
}

// renameTree moves the non-empty directory ino to (dir, leaf) by
// decomposing the move per entry, parents before children, each child
// level in name order (deterministic across replicas). Everything that
// can fail is checked before the first mutation — conflict marks
// anywhere in the subtree, cycles, a live destination, and slot
// capacity, via a dry run that mirrors moveEntry's decisions exactly
// (including which destinations reuse a tombstone) — so a rename that
// starts always completes.
func (f *FS) renameTree(ino, dir int, leaf string) error {
	// Collect the live subtree in preorder, children name-sorted.
	type entry struct {
		ino    int
		parent int // source parent ino
	}
	entries := []entry{{ino: ino, parent: int(f.iGet(ino, iParent))}}
	inTree := map[int]bool{ino: true}
	var walk func(d int) error
	walk = func(d int) error {
		var kids []int
		for i := 1; i < NumInodes; i++ {
			if f.iGet(i, iFlags)&flagExists != 0 && int(f.iGet(i, iParent)) == d {
				kids = append(kids, i)
			}
		}
		sort.Slice(kids, func(a, b int) bool { return f.name(kids[a]) < f.name(kids[b]) })
		for _, k := range kids {
			kfl := f.iGet(k, iFlags)
			if kfl&flagConflict != 0 {
				return ErrConflict
			}
			entries = append(entries, entry{ino: k, parent: d})
			inTree[k] = true
			if kfl&flagDir != 0 {
				if err := walk(k); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(ino); err != nil {
		return err
	}
	// The destination chain must not pass through the moved subtree.
	for d := dir; d != 0; d = int(f.iGet(d, iParent)) {
		if inTree[d] {
			return ErrBadName
		}
	}
	if f.childIn(dir, leaf, flagExists) >= 0 {
		return ErrExists
	}
	// Dry-run the whole move before mutating anything, mirroring exactly
	// the decisions moveEntry and freeInode will make: which destination
	// slots reuse a tombstone (a conflicted one refuses the move —
	// including stale tombstones whose parent field aliases a slot this
	// rename is about to allocate) and which consume a free slot, in
	// first-fit order. A rename that passes the dry run cannot fail
	// part-way, so the operation is all-or-nothing.
	taken := map[int]bool{}
	nextFree := func() int {
		for i := 1; i < NumInodes; i++ {
			if !f.inUse(i) && !taken[i] {
				return i
			}
		}
		return -1
	}
	planned := make([]int, len(entries)) // destination slot per entry
	plannedParent := map[int]int{}       // source ino -> planned destination slot
	for i, e := range entries {
		d, l := dir, leaf
		if i > 0 {
			d, l = plannedParent[e.parent], f.name(e.ino)
		}
		// The same (dir, name) tombstone lookup moveEntry will perform:
		// for i > 0, d is a slot this rename will allocate, so a hit is a
		// stale tombstone whose parent field aliases the reused number.
		dst := f.childIn(d, l, flagTomb)
		if dst >= 0 && f.iGet(dst, iFlags)&flagConflict != 0 {
			return ErrConflict
		}
		if dst < 0 {
			dst = nextFree()
			if dst < 0 {
				return ErrNameTaken
			}
		}
		taken[dst] = true
		planned[i] = dst
		plannedParent[e.ino] = dst
	}
	// Execute top-down: each entry moves under its parent's new slot.
	// The moves follow the plan by construction, so nothing can fail
	// after the first mutation.
	newIno := map[int]int{}
	for i, e := range entries {
		d, l := dir, leaf
		if i > 0 {
			d, l = newIno[e.parent], f.name(e.ino)
		}
		nd, err := f.moveEntry(e.ino, d, l)
		if err != nil {
			panic(fmt.Sprintf("fs: renameTree: move failed after dry run (%s under %d): %v", l, d, err))
		}
		if nd != planned[i] {
			panic(fmt.Sprintf("fs: renameTree: planned slot %d, moved to %d", planned[i], nd))
		}
		newIno[e.ino] = nd
	}
	return nil
}

// Info describes a file or directory.
type Info struct {
	Name       string // full path, no leading slash
	Size       int
	Version    uint32
	AppendOnly bool
	Conflicted bool
	Dir        bool
}

// Stat reports an entry's metadata. Conflicted entries can be statted
// (the conflict flag is how the caller finds out).
func (f *FS) Stat(path string) (Info, error) {
	ino := f.lookup(path)
	if ino < 0 {
		return Info{}, ErrNotFound
	}
	return f.statIno(ino), nil
}

func (f *FS) statIno(ino int) Info {
	fl := f.iGet(ino, iFlags)
	return Info{
		Name:       f.pathOf(ino),
		Size:       int(f.iGet(ino, iSize)),
		Version:    f.iGet(ino, iVersion),
		AppendOnly: fl&flagAppendOnly != 0,
		Conflicted: fl&flagConflict != 0,
		Dir:        fl&flagDir != 0,
	}
}

// List returns every live entry in the image (files and directories,
// the root excluded), sorted by path — a deterministic order, in
// keeping with §2.4: directory iteration must not leak timing.
func (f *FS) List() []Info {
	var out []Info
	for i := 1; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&flagExists != 0 {
			out = append(out, f.statIno(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReadDir returns the live entries directly under path ("" or "/" for
// the root), sorted by name.
func (f *FS) ReadDir(path string) ([]Info, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	dir, err := f.walkDirs(parts)
	if err != nil {
		return nil, err
	}
	var out []Info
	for i := 1; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&flagExists != 0 && int(f.iGet(i, iParent)) == dir {
			out = append(out, f.statIno(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// checkRange validates a byte-range request before any of the 32-bit
// on-image arithmetic can wrap: negative offsets and ranges whose end
// exceeds the image's growth ceiling are rejected up front. It returns
// the validated start and end as image-safe uint32s. Prior to this
// check, uint32(off) silently wrapped a negative offset to a huge one,
// letting a single bad WriteAt trample other files' extents — the exact
// failure mode SetProtect exists to prevent from outside the API,
// happening from inside it.
func (f *FS) checkRange(off, n int) (uint32, uint32, error) {
	limit := f.maxSize()
	if off < 0 || n < 0 || uint64(off) > limit {
		return 0, 0, ErrBadOffset
	}
	// off is now bounded by the image ceiling and n by a real slice
	// length, so the 64-bit sum cannot overflow.
	end := int64(off) + int64(n)
	if end > int64(limit) {
		return 0, 0, ErrBadOffset
	}
	return uint32(off), uint32(end), nil
}

// ensureCap grows a file's extent to hold at least n bytes, copying the
// current contents into the new extent and freeing the old one. Growth
// is computed in 64-bit space and capped at the image ceiling: the
// former uint32 doubling loop wrapped to zero — and spun forever — once
// a requested size crossed 2³¹.
func (f *FS) ensureCap(ino int, n uint32) error {
	cap0 := f.iGet(ino, iExtCap)
	if n <= cap0 {
		return nil
	}
	if uint64(n) > f.maxSize() {
		return ErrNoSpace // could never fit even in an empty image
	}
	newCap := f.canonicalCap(n)
	off, err := f.allocExtent(newCap)
	if err != nil {
		return err
	}
	size := f.iGet(ino, iSize)
	if size > 0 {
		buf := make([]byte, size)
		f.gbytes(f.iGet(ino, iExtOff), buf)
		f.pbytes(off, buf)
	}
	f.freeExtent(f.iGet(ino, iExtOff), cap0)
	f.iPut(ino, iExtOff, off)
	f.iPut(ino, iExtCap, newCap)
	return nil
}

// resolveFile looks up a live regular file for a data operation.
func (f *FS) resolveFile(path string) (int, error) {
	ino := f.lookup(path)
	if ino < 0 {
		return -1, ErrNotFound
	}
	if f.iGet(ino, iFlags)&flagDir != 0 {
		return -1, ErrIsDir
	}
	return ino, nil
}

// WriteAt writes p at byte offset off, growing the file as needed, and
// bumps the file's version. Offsets that are negative or whose end would
// exceed the image ceiling return ErrBadOffset before touching any byte.
func (f *FS) WriteAt(path string, off int, p []byte) error {
	defer f.unlock()()
	ino, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	return f.writeAt(ino, off, p)
}

// writeAt is the locked core of WriteAt and Append: the caller holds the
// write-protection window and has resolved the inode.
func (f *FS) writeAt(ino int, off int, p []byte) error {
	if f.iGet(ino, iFlags)&flagConflict != 0 {
		return ErrConflict
	}
	start, end, err := f.checkRange(off, len(p))
	if err != nil {
		return err
	}
	if err := f.ensureCap(ino, end); err != nil {
		return err
	}
	if size := f.iGet(ino, iSize); start > size {
		// Writing past EOF leaves a hole, which must read as zeros even
		// if the extent holds stale bytes from before a truncate.
		zero := make([]byte, start-size)
		f.pbytes(f.iGet(ino, iExtOff)+size, zero)
	}
	f.pbytes(f.iGet(ino, iExtOff)+start, p)
	if end > f.iGet(ino, iSize) {
		f.iPut(ino, iSize, end)
	}
	f.bump(ino)
	return nil
}

// Append writes p at end of file. The size lookup and the write happen
// as one operation under a single write-protection window.
func (f *FS) Append(path string, p []byte) error {
	defer f.unlock()()
	ino, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	return f.writeAt(ino, int(f.iGet(ino, iSize)), p)
}

// ReadAt reads up to len(p) bytes at offset off, returning the count.
// Negative offsets return ErrBadOffset (the old code wrapped them to
// huge ones and read other files' bytes).
func (f *FS) ReadAt(path string, off int, p []byte) (int, error) {
	ino, err := f.resolveFile(path)
	if err != nil {
		return 0, err
	}
	if f.iGet(ino, iFlags)&flagConflict != 0 {
		return 0, ErrConflict
	}
	if _, _, err := f.checkRange(off, 0); err != nil {
		return 0, err
	}
	size := int(f.iGet(ino, iSize))
	if off >= size {
		return 0, nil
	}
	n := len(p)
	if off+n > size {
		n = size - off
	}
	f.gbytes(f.iGet(ino, iExtOff)+uint32(off), p[:n])
	return n, nil
}

// ReadFile returns a file's full contents.
func (f *FS) ReadFile(path string) ([]byte, error) {
	info, err := f.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.Dir {
		return nil, ErrIsDir
	}
	if info.Conflicted {
		return nil, ErrConflict
	}
	buf := make([]byte, info.Size)
	_, err = f.ReadAt(path, 0, buf)
	return buf, err
}

// WriteFile replaces a file's contents, creating it if needed.
func (f *FS) WriteFile(path string, p []byte) error {
	if f.lookup(path) < 0 {
		if err := f.Create(path); err != nil {
			return err
		}
	}
	if err := f.Truncate(path, 0); err != nil {
		return err
	}
	return f.WriteAt(path, 0, p)
}

// Truncate sets a file's size to n (growing zero-filled if needed).
// Shrinking returns the extent tail beyond the new canonical capacity to
// the free list; truncating to zero releases the extent entirely.
// Negative or ceiling-exceeding sizes return ErrBadOffset.
func (f *FS) Truncate(path string, n int) error {
	defer f.unlock()()
	ino, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	if f.iGet(ino, iFlags)&flagConflict != 0 {
		return ErrConflict
	}
	size, _, err := f.checkRange(n, 0)
	if err != nil {
		return err
	}
	if err := f.ensureCap(ino, size); err != nil {
		return err
	}
	if old := f.iGet(ino, iSize); size > old {
		zero := make([]byte, size-old)
		f.pbytes(f.iGet(ino, iExtOff)+old, zero)
	}
	if newCap := f.canonicalCap(size); newCap < f.iGet(ino, iExtCap) {
		off := f.iGet(ino, iExtOff)
		f.freeExtent(off+newCap, f.iGet(ino, iExtCap)-newCap)
		f.iPut(ino, iExtCap, newCap)
		if newCap == 0 {
			f.iPut(ino, iExtOff, 0)
		}
	}
	f.iPut(ino, iSize, size)
	f.bump(ino)
	return nil
}

// StampFork records, for every entry, the version and size at this
// moment. The runtime calls it in a child immediately after fork (and
// again after a two-way sync); reconciliation later compares both
// replicas against these recorded fork-time values to decide which side
// changed (the degenerate two-replica version vector of Parker et al.).
func (f *FS) StampFork() {
	defer f.unlock()()
	for i := 1; i < NumInodes; i++ {
		if !f.inUse(i) {
			continue
		}
		f.iPut(i, iForkVersion, f.iGet(i, iVersion))
		f.iPut(i, iForkSize, f.iGet(i, iSize))
	}
}

// --- introspection ------------------------------------------------------------

// ImageSize reports the image's currently mapped extent in bytes.
func (f *FS) ImageSize() uint64 { return f.size() }

// ImageSizeAt reads the recorded size of an image at base without
// attaching to it. Collectors use it to learn how many bytes of a child
// replica to copy before the full image — and its validation — is in
// reach; only the first page needs to be present.
func ImageSizeAt(env *kernel.Env, base vm.Addr) (uint64, error) {
	if env.ReadU32(base+sbMagic) != Magic {
		return 0, fmt.Errorf("fs: no image at %#x", base)
	}
	return uint64(env.ReadU32(base + sbSize)), nil
}

// GCStats reports the allocator's reuse and growth counters, which live
// in the superblock and are therefore per-replica and fully
// deterministic.
type GCStats struct {
	Allocs      int   // extent allocations ever made
	Reused      int   // allocations served from the free list
	ReusedBytes int64 // bytes so served
	FreeExtents int   // current free-list entries
	FreeBytes   int64 // bytes currently on the free list
	Grows       int   // chained regions added
	Compactions int   // Compact passes run
	Dropped     int   // free extents leaked to table overflow
}

// GC reads the current garbage-collection statistics.
func (f *FS) GC() GCStats {
	st := GCStats{
		Allocs:      int(f.gu32(sbAllocs)),
		Reused:      int(f.gu32(sbReused)),
		ReusedBytes: int64(f.gu32(sbReusedKB)) * 1024,
		Grows:       int(f.gu32(sbGrows)),
		Compactions: int(f.gu32(sbCompacts)),
		Dropped:     int(f.gu32(sbDropped)),
	}
	for _, e := range f.readFreeList() {
		st.FreeExtents++
		st.FreeBytes += int64(e.length)
	}
	return st
}

// Checksum hashes the entire image (FNV-1a 64). After a Compact the
// image layout is canonical, so replicas that performed the same
// operation history produce identical checksums — the bit-determinism
// assertion the benchmarks lean on.
func (f *FS) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	size := f.size()
	buf := make([]byte, 64<<10)
	for off := uint64(0); off < size; off += uint64(len(buf)) {
		n := uint64(len(buf))
		if off+n > size {
			n = size - off
		}
		f.gbytes(uint32(off), buf[:n])
		for _, b := range buf[:n] {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}
