package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Property test: the file system against a plain in-memory oracle.
// Random sequences of create/write/append/truncate/unlink must leave the
// image observably identical to a map of byte slices.
func TestFSMatchesOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		m := kernel.New(kernel.Config{})
		res := m.Run(func(env *kernel.Env) {
			env.SetPerm(testBase, testSize, vm.PermRW)
			fsys := Format(env, testBase, testSize)
			oracle := map[string][]byte{}
			rng := rand.New(rand.NewSource(seed))
			names := []string{"a", "b", "c", "d"}

			for op := 0; op < 120; op++ {
				name := names[rng.Intn(len(names))]
				_, exists := oracle[name]
				switch rng.Intn(5) {
				case 0: // create
					err := fsys.Create(name)
					if exists != (err != nil) {
						ok = false // create must fail iff the file exists
						return
					}
					if !exists {
						oracle[name] = []byte{}
					}
				case 1: // write at random offset
					if !exists {
						continue
					}
					off := rng.Intn(200)
					data := make([]byte, rng.Intn(100)+1)
					rng.Read(data)
					if err := fsys.WriteAt(name, off, data); err != nil {
						ok = false
						return
					}
					buf := oracle[name]
					for len(buf) < off+len(data) {
						buf = append(buf, 0)
					}
					copy(buf[off:], data)
					oracle[name] = buf
				case 2: // append
					if !exists {
						continue
					}
					data := make([]byte, rng.Intn(60)+1)
					rng.Read(data)
					if err := fsys.Append(name, data); err != nil {
						ok = false
						return
					}
					oracle[name] = append(oracle[name], data...)
				case 3: // truncate
					if !exists {
						continue
					}
					n := rng.Intn(150)
					if err := fsys.Truncate(name, n); err != nil {
						ok = false
						return
					}
					buf := oracle[name]
					for len(buf) < n {
						buf = append(buf, 0)
					}
					oracle[name] = buf[:n]
				case 4: // unlink
					err := fsys.Unlink(name)
					if exists == (err != nil) {
						ok = false // unlink must succeed iff the file exists
						return
					}
					delete(oracle, name)
				}
			}

			// Compare the full observable state.
			listed := fsys.List()
			if len(listed) != len(oracle) {
				ok = false
				return
			}
			for _, info := range listed {
				want, exists := oracle[info.Name]
				if !exists {
					ok = false
					return
				}
				got, err := fsys.ReadFile(info.Name)
				if err != nil || !bytes.Equal(got, want) {
					ok = false
					return
				}
			}
		}, 0)
		if res.Status != kernel.StatusHalted {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: reconciliation of children with disjoint file sets is
// conflict-free and the parent ends with the union, regardless of count.
func TestReconcileUnionProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		m := kernel.New(kernel.Config{})
		res := m.Run(func(env *kernel.Env) {
			env.SetPerm(testBase, testSize, vm.PermRW)
			parent := Format(env, testBase, testSize)
			rng := rand.New(rand.NewSource(seed))
			nChildren := rng.Intn(3) + 2

			expected := map[string]string{}
			for c := 0; c < nChildren; c++ {
				// Clone the parent image to a scratch area.
				scratchAt := scratch + vm.Addr(c)*0x0100_0000
				env.SetPerm(scratchAt, testSize, vm.PermRW)
				buf := make([]byte, testSize)
				env.Read(testBase, buf)
				env.Write(scratchAt, buf)
				child, err := Attach(env, scratchAt, testSize)
				if err != nil {
					ok = false
					return
				}
				child.StampFork()
				// Child writes its own files.
				for k := 0; k < rng.Intn(4)+1; k++ {
					name := fmt.Sprintf("c%d-f%d", c, k)
					content := fmt.Sprintf("content-%d-%d-%d", c, k, rng.Intn(1000))
					if err := child.WriteFile(name, []byte(content)); err != nil {
						ok = false
						return
					}
					expected[name] = content
				}
				conflicts, err := parent.ReconcileFrom(child)
				if err != nil || len(conflicts) != 0 {
					ok = false
					return
				}
			}
			for name, want := range expected {
				got, err := parent.ReadFile(name)
				if err != nil || string(got) != want {
					ok = false
					return
				}
			}
		}, 0)
		return res.Status == kernel.StatusHalted && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
