package serve

// Checkpoint-backed eviction: the mechanism that lets open sessions
// outnumber resident ones by orders of magnitude. A resting session's
// whole machine state is an Image; Suspend pushes it into the shared
// content-addressed store as a chained manifest (costing only chunks
// new since its last save) and frees the in-memory copy. The next
// dispatch reloads it transparently, bit-identical — so eviction policy
// is pure resource management and can never change a result.

// evictOverCap suspends least-recently-dispatched resting sessions
// until the number holding in-memory images is within Config.Resident.
// Called under s.mu after every slice and admission.
func (s *Server) evictOverCap() {
	if s.cfg.Resident <= 0 {
		return
	}
	for s.m.ResidentSessions > int64(s.cfg.Resident) {
		victim := s.evictim()
		if victim == nil {
			return // everything resident is mid-slice; re-check next slice
		}
		if _, err := victim.sess.Suspend(s.cfg.Store); err != nil {
			// A failed eviction leaves the session resident and intact;
			// fail its request rather than wedging the eviction loop.
			s.finish(victim, zeroResult, err)
			s.setPages(victim, 0)
			continue
		}
		s.setPages(victim, 0)
		s.m.Evictions++
	}
}

// evictim picks the least-recently-dispatched session holding an
// in-memory image that no worker is executing; ties break by ID (the
// registry iterates in ID order), keeping the choice deterministic for
// a given dispatch history.
func (s *Server) evictim() *session {
	var victim *session
	for _, c := range s.sortedSessions() {
		if c.pages == 0 || c.running {
			continue
		}
		if victim == nil || c.lastTick < victim.lastTick {
			victim = c
		}
	}
	return victim
}
