package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
)

// TestServeCrashMidRetry kills the worker mid-slice on a fixed cadence:
// each death leaves the pre-slice checkpoint intact, the slice re-runs
// in place, and the final result is exactly the uninterrupted one.
func TestServeCrashMidRetry(t *testing.T) {
	maker := StripeProgram(2, 5, 128)
	s := newTestServer(t, Config{Slice: 1, Fault: func(ev FaultEvent) FaultAction {
		if ev.Slice%3 == 1 {
			return FaultCrashMid
		}
		return FaultNone
	}})
	s.Register("stripe", maker)

	for i := 0; i < 3; i++ {
		id, err := s.Open("acme", "stripe", uint64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("acme", id)
		if err != nil {
			t.Fatal(err)
		}
		if want := directResult(t, maker, uint64(40+i)); res != want {
			t.Errorf("session %d: served %+v after mid-slice deaths, direct %+v", i, res, want)
		}
	}
	st := s.Stats()
	if st.WorkerDeaths == 0 || st.Retries == 0 {
		t.Errorf("cadence never killed a worker: %+v", st)
	}
	if st.Failovers != 0 || st.BitEqFail != 0 {
		t.Errorf("mid-slice deaths should retry in place: %+v", st)
	}
}

// TestServeCrashAfterFailover kills the worker after its slice lands:
// the server re-admits the session from the pre-slice manifest on a
// fresh Session, re-runs the slice, and asserts the re-run's checkpoint
// digest equals the dead worker's — the determinism claim checked on
// every failover, including the final result-bearing slice.
func TestServeCrashAfterFailover(t *testing.T) {
	const phases = 5
	maker := StripeProgram(2, phases, 128)
	var slices atomic.Int64
	s := newTestServer(t, Config{Slice: 1, Fault: func(ev FaultEvent) FaultAction {
		// Kill phase-0, a middle, and the final slice of the first session.
		switch slices.Add(1) - 1 {
		case 0, 2, phases - 1:
			return FaultCrashAfter
		}
		return FaultNone
	}})
	s.Register("stripe", maker)

	id, err := s.Open("acme", "stripe", 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("acme", id)
	if err != nil {
		t.Fatal(err)
	}
	if want := directResult(t, maker, 99); res != want {
		t.Errorf("served %+v after failovers, direct %+v", res, want)
	}
	st := s.Stats()
	if st.Failovers != 3 || st.BitEqOK != 3 {
		t.Errorf("want 3 digest-checked failovers, got %+v", st)
	}
	if st.BitEqFail != 0 {
		t.Errorf("failover re-run diverged from dead worker's attempt: %+v", st)
	}
}

// TestServeFaultStorm is the randomized soak: three tenants' sessions
// run concurrently while a seeded generator kills workers mid- and
// post-slice and the driver fires evictions and GCs into the middle of
// it. Every final result must still be bit-identical to an
// uninterrupted private run, every failover digest must match, and GC
// must never strand a live session's chain.
func TestServeFaultStorm(t *testing.T) {
	const (
		tenants  = 3
		perT     = 5
		phases   = 6
		residCap = 2
	)
	maker := StripeProgram(3, phases, 192)
	store := repro.NewMemStore()

	// hookRng is touched only by the fault hook, which runs under the
	// server mutex; opRng only by the driver goroutine.
	hookRng := rand.New(rand.NewSource(0xD57E))
	opRng := rand.New(rand.NewSource(0x57012))

	s := newTestServer(t, Config{
		Store: store, Workers: 3, Resident: residCap, Slice: 1,
		Fault: func(ev FaultEvent) FaultAction {
			switch r := hookRng.Float64(); {
			case r < 0.15:
				return FaultCrashMid
			case r < 0.30:
				return FaultCrashAfter
			}
			return FaultNone
		},
	})
	s.Register("stripe", maker)

	type req struct {
		tenant string
		id     SessionID
		arg    uint64
	}
	var reqs []req
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		for k := 0; k < perT; k++ {
			arg := uint64(7000 + 100*ti + k)
			id, err := s.Open(tenant, "stripe", arg)
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, req{tenant, id, arg})
		}
	}

	results := make([]repro.RunResult, len(reqs))
	var wg sync.WaitGroup
	var pending atomic.Int64
	pending.Store(int64(len(reqs)))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r req) {
			defer wg.Done()
			defer pending.Add(-1)
			res, err := s.Run(r.tenant, r.id)
			if err != nil {
				t.Errorf("run %s: %v", r.id, err)
				return
			}
			results[i] = res
		}(i, r)
	}

	// The driver: while runs are in flight, randomly evict resting
	// sessions and garbage-collect the shared store mid-storm. Both are
	// safe at any moment — they can change latency, never results.
	gcMid := 0
	for pending.Load() > 0 {
		switch r := reqs[opRng.Intn(len(reqs))]; opRng.Intn(4) {
		case 0:
			// Busy or unknown sessions refuse; resting ones suspend.
			_ = s.Evict(r.tenant, r.id)
		case 1:
			if _, err := s.GC(); err != nil {
				t.Errorf("mid-storm GC: %v", err)
			}
			gcMid++
		default:
			runtime.Gosched()
		}
	}
	wg.Wait()

	for i, r := range reqs {
		if want := directResult(t, maker, r.arg); results[i] != want {
			t.Errorf("session %s: served %+v, direct %+v", r.id, results[i], want)
		}
	}
	st := s.Stats()
	if st.Completed != int64(len(reqs)) {
		t.Errorf("completed %d of %d", st.Completed, len(reqs))
	}
	if st.BitEqFail != 0 {
		t.Errorf("%d failover digest mismatches", st.BitEqFail)
	}
	if st.WorkerDeaths == 0 || st.Retries == 0 || st.Failovers == 0 || st.BitEqOK == 0 {
		t.Errorf("storm injected no faults: %+v", st)
	}
	if st.Evictions == 0 || st.Resumes == 0 {
		t.Errorf("storm never cycled sessions through the store: %+v", st)
	}
	t.Logf("storm: %d slices, %d deaths (%d retries, %d failovers), %d evictions, %d resumes, %d mid-storm GCs",
		st.Slices, st.WorkerDeaths, st.Retries, st.Failovers, st.Evictions, st.Resumes, gcMid)

	// GC never strands a live chain: push every session's final image,
	// collect, and re-load every chain end to end from the swept store.
	for _, r := range reqs {
		if err := s.Evict(r.tenant, r.id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	heads := make(map[SessionID]repro.ChunkKey, len(s.sessions))
	for _, c := range s.sortedSessions() {
		if m := c.sess.LastManifest(); m != nil {
			heads[c.id] = m.Key()
		}
	}
	s.mu.Unlock()
	if len(heads) != len(reqs) {
		t.Fatalf("%d chain heads for %d sessions", len(heads), len(reqs))
	}
	for id, key := range heads {
		m, err := repro.LoadManifest(store, key)
		if err != nil {
			t.Errorf("session %s: chain head lost after GC: %v", id, err)
			continue
		}
		if _, err := repro.LoadImage(store, m); err != nil {
			t.Errorf("session %s: image unloadable after GC: %v", id, err)
		}
	}
}
