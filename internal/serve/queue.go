package serve

import "sort"

// runQueue is the deterministic dispatch order: one FIFO per tenant,
// drained round-robin over the sorted tenant names. Within a tenant,
// requests run in arrival order; across tenants, service rotates
// fairly and reproducibly — the schedule is a function of the request
// sequence, never of map iteration order or goroutine timing. (The
// schedule affects only latency; session results are deterministic
// regardless, which is what makes the whole fabric retryable.)
type runQueue struct {
	fifos map[string][]*session
	last  string // tenant served most recently; rotation resumes after it
	size  int
}

func newRunQueue() *runQueue {
	return &runQueue{fifos: make(map[string][]*session)}
}

func (q *runQueue) empty() bool { return q.size == 0 }

// push appends c to its tenant's FIFO.
func (q *runQueue) push(c *session) {
	q.fifos[c.tenant] = append(q.fifos[c.tenant], c)
	q.size++
	c.queued = true
}

// pop removes and returns the next session to run: the head of the
// first non-empty tenant FIFO strictly after the last-served tenant in
// sorted order, wrapping around.
func (q *runQueue) pop() *session {
	if q.size == 0 {
		return nil
	}
	names := make([]string, 0, len(q.fifos))
	for name, fifo := range q.fifos {
		if len(fifo) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	pick := names[0]
	for _, name := range names {
		if name > q.last {
			pick = name
			break
		}
	}
	fifo := q.fifos[pick]
	c := fifo[0]
	fifo[0] = nil
	q.fifos[pick] = fifo[1:]
	if len(q.fifos[pick]) == 0 {
		delete(q.fifos, pick)
	}
	q.last = pick
	q.size--
	c.queued = false
	return c
}
