package serve

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro"
)

// SessionID names one open session, unique within the server. IDs are
// dense per tenant ("tenant/0", "tenant/1", …) so a request log is
// replayable.
type SessionID string

// session is the server-side record of one open session: the repro
// Session, the bound program (kept for failover rebinds), and the
// scheduling and accounting state the dispatcher maintains.
type session struct {
	id      SessionID
	tenant  string
	program string
	arg     uint64

	sess *repro.Session
	prog repro.Program // wrapped program; rebindable onto a fresh Session

	// kill is armed by the fault hook to make the next phase panic —
	// the worker-killed-mid-slice simulation. Read by the machine
	// goroutine inside the phase wrapper, hence atomic.
	kill atomic.Bool

	queued   bool  // in the run queue
	running  bool  // a worker is executing a slice
	wanted   bool  // a Run request wants it driven to completion
	lastTick int64 // logical time of the last dispatch (LRU eviction key)
	pages    int   // resident pages of the in-memory resting image (0 = none)

	done   bool // final result computed (or request failed)
	result repro.RunResult
	failed error
}

// armKill requests that the session's next phase panic.
func (c *session) armKill() { c.kill.Store(true) }

// takeKill consumes an armed kill.
func (c *session) takeKill() bool { return c.kill.CompareAndSwap(true, false) }

// lookup finds tenantName's session id. Cross-tenant probes report the
// same error as a genuinely unknown ID: one tenant cannot learn another
// tenant's session names.
func (s *Server) lookup(tenantName string, id SessionID) (*session, error) {
	c, ok := s.sessions[id]
	if !ok || c.tenant != tenantName {
		return nil, fmt.Errorf("serve: tenant %s has no session %s", tenantName, id)
	}
	return c, nil
}

// sortedSessions returns the registry's sessions in ID order — the
// deterministic iteration every registry sweep (eviction, GC roots,
// accounting) uses.
func (s *Server) sortedSessions() []*session {
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	out := make([]*session, len(ids))
	for i, id := range ids {
		out[i] = s.sessions[SessionID(id)]
	}
	return out
}
