// Package serve is the deterministic session-serving fabric: a
// long-lived server multiplexing many concurrent repro.Sessions for
// many tenants over a bounded worker pool.
//
// The design leans entirely on the library's determinism guarantees:
//
//   - Timeslicing: sessions execute in phase-bounded slices
//     (Session.Step) and yield their worker at quiescence points, so a
//     handful of workers serve any number of open sessions.
//   - Eviction: resting sessions are suspended into a shared
//     content-addressed store and resume transparently on their next
//     slice — idle sessions cost store bytes, not memory.
//   - Retry and failover are free: a slice re-run from the last
//     checkpoint is bit-identical to the attempt a dead worker made,
//     which the server asserts (Metrics.BitEqOK) rather than assumes.
//
// Scheduling policy (admission, FIFO-per-tenant queueing, eviction
// order) affects only latency and availability, never results — which
// is why this package must not read the wall clock (detlint enforces
// it); wall-budget accounting uses the injected Config.Clock, and only
// to refuse work, never to change it.
package serve

import (
	"fmt"
	"sync"

	"repro"
)

// zeroResult is the empty result failed requests report.
var zeroResult = repro.RunResult{}

// ProgramMaker builds one tenant program instance from a request
// argument. Makers are registered by name (Register) and must be
// deterministic: the program's result may depend only on arg.
type ProgramMaker func(arg uint64) repro.Program

// ConfigError reports an invalid server configuration value.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("serve: config %s: %s", e.Field, e.Reason) }

// ErrClosed reports a request issued to a shut-down server.
type shutdownError struct{}

func (shutdownError) Error() string { return "serve: server is shut down" }

// ErrClosed is returned by requests issued to (or stranded in) a
// shut-down server.
var ErrClosed error = shutdownError{}

// Config configures a Server.
type Config struct {
	// Store is the shared content-addressed store evicted checkpoints
	// land in. Required. All tenants share it: identical chunks dedupe
	// across sessions, and GC roots at every open session's chain head.
	Store repro.ChunkStore
	// SessionOpts configures every Session the server builds. The
	// machine shape must stay fixed for the server's lifetime: a resume
	// must match the shape its checkpoint was captured under.
	SessionOpts []repro.SessionOption
	// Workers bounds concurrently executing slices (default 1).
	Workers int
	// Resident bounds sessions holding an in-memory checkpoint; the
	// least-recently-dispatched resting session is evicted to Store
	// when the bound is exceeded (0 = unbounded).
	Resident int
	// Slice is the phase budget per dispatch (default 1): how far a
	// session runs before yielding its worker.
	Slice int
	// DefaultCaps apply to tenants without an explicit SetCaps.
	DefaultCaps TenantCaps
	// Clock supplies monotonic wall time in nanoseconds for wall-budget
	// accounting. This package never reads the wall clock itself (the
	// determinism rules forbid it); cmd/detserved injects time.Now.
	// Nil disables wall accounting.
	Clock func() int64
	// Fault, when non-nil, injects worker deaths (tests, bench).
	Fault FaultHook
}

// Server multiplexes sessions over a worker pool. Create with New,
// stop with Shutdown.
type Server struct {
	cfg      Config
	mu       sync.Mutex
	cond     *sync.Cond
	programs map[string]ProgramMaker
	tenants  map[string]*tenant
	sessions map[SessionID]*session
	queue    *runQueue
	tick     int64 // logical dispatch clock (LRU key; never wall time)
	runningN int
	gcWait   bool
	closed   bool
	m        Metrics
	wg       sync.WaitGroup
}

// New validates cfg, starts the worker pool and returns the server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, &ConfigError{Field: "Store", Reason: "a shared checkpoint store is required"}
	}
	if cfg.Workers < 0 {
		return nil, &ConfigError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d", cfg.Workers)}
	}
	if cfg.Resident < 0 {
		return nil, &ConfigError{Field: "Resident", Reason: fmt.Sprintf("negative resident cap %d", cfg.Resident)}
	}
	if cfg.Slice < 0 {
		return nil, &ConfigError{Field: "Slice", Reason: fmt.Sprintf("negative slice budget %d", cfg.Slice)}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Slice == 0 {
		cfg.Slice = 1
	}
	s := &Server{
		cfg:      cfg,
		programs: make(map[string]ProgramMaker),
		tenants:  make(map[string]*tenant),
		sessions: make(map[SessionID]*session),
		queue:    newRunQueue(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Register makes a program available to Open under name.
func (s *Server) Register(name string, maker ProgramMaker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.programs[name] = maker
}

// SetCaps installs caps for one tenant (overriding DefaultCaps).
func (s *Server) SetCaps(tenantName string, caps TenantCaps) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenantFor(tenantName).caps = caps
}

// tenantFor returns (creating if needed) the tenant record. Caller
// holds s.mu.
func (s *Server) tenantFor(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name, caps: s.cfg.DefaultCaps}
		s.tenants[name] = t
	}
	return t
}

// newSession builds a fresh Session from the server's options.
func (s *Server) newSession() (*repro.Session, error) {
	return repro.NewSession(s.cfg.SessionOpts...)
}

// slice returns the per-dispatch phase budget.
func (s *Server) slice() int { return s.cfg.Slice }

// wrapProgram interposes the fault hook's kill switch on the program's
// phases: an armed kill panics before the phase body runs, which the
// kernel converts into a trap the dispatcher treats as a worker death.
func wrapProgram(c *session, p repro.Program) repro.Program {
	inner := p.Phase
	p.Phase = func(rt *repro.RT, ph int) error {
		if c.takeKill() {
			panic(fmt.Sprintf("serve: worker killed mid-slice (session %s, phase %d)", c.id, ph))
		}
		return inner(rt, ph)
	}
	return p
}

// Open admits a new session for tenantName running the registered
// program with arg, subject to the tenant's caps. The session starts
// Quiescent at phase 0 and costs nothing until its first Run.
func (s *Server) Open(tenantName, program string, arg uint64) (SessionID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	maker, ok := s.programs[program]
	if !ok {
		return "", fmt.Errorf("serve: unknown program %q", program)
	}
	t := s.tenantFor(tenantName)
	if ce := t.admission(); ce != nil {
		s.m.CapRejections++
		return "", ce
	}
	sess, err := s.newSession()
	if err != nil {
		return "", err
	}
	id := SessionID(fmt.Sprintf("%s/%d", tenantName, t.seq))
	c := &session{id: id, tenant: tenantName, program: program, arg: arg, sess: sess}
	c.prog = wrapProgram(c, maker(arg))
	if err := sess.Bind(c.prog); err != nil {
		return "", err
	}
	t.seq++
	t.open++
	s.sessions[id] = c
	s.m.Opened++
	return id, nil
}

// Run drives tenantName's session id to completion and returns its
// result, blocking while the dispatcher slices it against everyone
// else's work. Running a completed session returns the same result
// again — delivery is idempotent because the result is deterministic.
func (s *Server) Run(tenantName string, id SessionID) (repro.RunResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookup(tenantName, id)
	if err != nil {
		return zeroResult, err
	}
	c.wanted = true
	if !c.done && !c.queued && !c.running {
		s.queue.push(c)
		s.cond.Broadcast()
	}
	for !c.done && !s.closed {
		s.cond.Wait()
	}
	if !c.done {
		return zeroResult, ErrClosed
	}
	return c.result, c.failed
}

// Evict forces tenantName's resting session id out of memory now —
// the administrative form of the automatic resident-cap eviction.
func (s *Server) Evict(tenantName string, id SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookup(tenantName, id)
	if err != nil {
		return err
	}
	if c.running {
		return fmt.Errorf("serve: session %s is mid-slice", id)
	}
	if c.pages == 0 {
		return nil // already cold
	}
	if _, err := c.sess.Suspend(s.cfg.Store); err != nil {
		return err
	}
	s.setPages(c, 0)
	s.m.Evictions++
	return nil
}

// CloseSession closes tenantName's session id and removes it from the
// registry; its manifest chain stops being a GC root. Busy sessions
// (queued or mid-slice) refuse to close.
func (s *Server) CloseSession(tenantName string, id SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookup(tenantName, id)
	if err != nil {
		return err
	}
	if c.running || c.queued {
		return fmt.Errorf("serve: session %s is busy", id)
	}
	_ = c.sess.Close()
	s.setPages(c, 0)
	delete(s.sessions, id)
	s.tenants[c.tenant].open--
	s.m.Closed++
	return nil
}

// GC removes store chunks unreachable from any open session's chain.
// It quiesces in-flight slices first (a concurrently written checkpoint
// must not race the sweep), then collects with every open session's
// newest manifest as a root; chaining keeps each chain's ancestors
// reachable, so eviction never strands a live tenant's history.
func (s *Server) GC() (repro.CollectStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.runningN > 0 {
		s.gcWait = true
		s.cond.Wait()
	}
	s.gcWait = false
	roots := make([]repro.ChunkKey, 0, len(s.sessions))
	for _, c := range s.sortedSessions() {
		if m := c.sess.LastManifest(); m != nil {
			roots = append(roots, m.Key())
		}
	}
	st, err := repro.CollectChunks(s.cfg.Store, roots...)
	s.cond.Broadcast()
	return st, err
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// Shutdown stops the worker pool. In-flight slices finish; stranded
// Run calls return ErrClosed. Open sessions are not suspended — call
// Evict first if their state must survive the process.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// finish completes c's request. Caller holds s.mu; waiters wake on the
// caller's broadcast.
func (s *Server) finish(c *session, res repro.RunResult, err error) {
	c.done = true
	c.result = res
	c.failed = err
}

// setPages updates c's resident-image accounting.
func (s *Server) setPages(c *session, n int) {
	if c.pages > 0 {
		s.m.ResidentSessions--
		s.m.ResidentPages -= int64(c.pages)
	}
	c.pages = n
	if n > 0 {
		s.m.ResidentSessions++
		s.m.ResidentPages += int64(n)
		if s.m.ResidentPages > s.m.ResidentPeakPages {
			s.m.ResidentPeakPages = s.m.ResidentPages
		}
	}
}

// worker is one pool goroutine: pop the next slice in deterministic
// order, execute it without the lock, account, re-queue or complete,
// and evict over-cap residents.
func (s *Server) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for !s.closed && (s.queue.empty() || s.gcWait) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		c := s.queue.pop()
		t := s.tenants[c.tenant]
		if ce := t.budget(); ce != nil {
			// The tenant's cumulative budget ran out while this session
			// queued: refuse the slice. The session stays open and resting;
			// a raised budget can finish it later.
			s.m.CapRejections++
			s.finish(c, zeroResult, ce)
			s.cond.Broadcast()
			continue
		}
		c.running = true
		s.runningN++
		s.tick++
		c.lastTick = s.tick
		act := FaultNone
		if s.cfg.Fault != nil {
			act = s.cfg.Fault(FaultEvent{Tenant: c.tenant, Session: c.id, Phase: c.sess.Phase(), Slice: s.m.Slices})
		}
		s.mu.Unlock()

		sr, st, err := s.execSlice(c, act)

		s.mu.Lock()
		c.running = false
		s.runningN--
		s.m.Slices++
		s.m.WallNS += st.wall
		t.wallUsed += st.wall
		if st.resumed {
			s.m.Resumes++
			s.m.ResumeNS += st.wall
		}
		if st.died {
			s.m.WorkerDeaths++
		}
		if st.retried {
			s.m.Retries++
		}
		if st.failover {
			s.m.Failovers++
		}
		if st.bitOK {
			s.m.BitEqOK++
		}
		if st.bitFail {
			s.m.BitEqFail++
		}
		switch {
		case err != nil:
			s.finish(c, zeroResult, err)
		default:
			s.setPages(c, sr.Pages)
			caps := t.caps
			if caps.MaxPages > 0 && sr.Pages > caps.MaxPages {
				s.m.CapRejections++
				s.finish(c, zeroResult, &CapError{Tenant: c.tenant, Cap: "pages",
					Limit: int64(caps.MaxPages), Used: int64(sr.Pages)})
			} else if sr.Done {
				t.vtUsed += sr.Result.VT
				s.m.Completed++
				s.finish(c, sr.Result, nil)
			} else if c.wanted {
				s.queue.push(c)
			}
		}
		s.evictOverCap()
		s.cond.Broadcast()
	}
}

// sliceStats is execSlice's accounting, folded into Metrics under the
// server lock.
type sliceStats struct {
	wall     int64
	resumed  bool
	died     bool
	retried  bool
	failover bool
	bitOK    bool
	bitFail  bool
}

// execSlice runs one timeslice of c without the server lock (the
// session's own lifecycle guards it; the dispatcher guarantees a
// single worker per session). Fault paths:
//
//   - A mid-slice death (injected kill or real trap) leaves the
//     pre-slice checkpoint intact; the slice is re-run once in place.
//     A deterministic program error recurs on the retry and fails the
//     request with the program's own error.
//   - A post-slice death (FaultCrashAfter) fails over to a fresh
//     Session re-admitted from the pre-slice manifest, re-runs the
//     slice, and asserts the re-run's digest equals the dead worker's —
//     the determinism claim, checked on every failover.
func (s *Server) execSlice(c *session, act FaultAction) (repro.StepResult, sliceStats, error) {
	var st sliceStats
	st.resumed = c.sess.State() == repro.StateSuspended

	var preMan *repro.Manifest
	if act == FaultCrashAfter {
		// Anchor the pre-slice state in the store so the failover has a
		// manifest to re-admit from. A fresh phase-0 session has no image
		// to anchor; its failover re-binds from scratch instead.
		switch {
		case st.resumed:
			preMan = c.sess.LastManifest()
		case c.sess.Phase() > 0:
			m, err := c.sess.Suspend(s.cfg.Store)
			if err != nil {
				return repro.StepResult{}, st, err
			}
			preMan = m
			st.resumed = true // the step below reloads from the store
		}
	}
	if act == FaultCrashMid {
		c.armKill()
	}

	var start int64
	if s.cfg.Clock != nil {
		start = s.cfg.Clock()
	}
	sr, err := c.sess.Step(s.slice())
	if err != nil {
		// Worker died mid-slice: the pre-slice rest is intact, so re-run
		// the slice once on the same worker.
		st.died = true
		st.retried = true
		sr, err = c.sess.Step(s.slice())
	}
	if err == nil && act == FaultCrashAfter {
		st.died = true
		st.failover = true
		sr, err = s.failover(c, preMan, sr, &st)
	}
	if s.cfg.Clock != nil {
		st.wall = s.cfg.Clock() - start
	}
	return sr, st, err
}

// failover replaces c's Session — whose worker "died" after completing
// a slice but before reporting — with a fresh one re-admitted from the
// pre-slice manifest (or re-bound from scratch for a phase-0 session),
// re-runs the slice, and compares checkpoint digests with the dead
// worker's attempt.
func (s *Server) failover(c *session, preMan *repro.Manifest, dead repro.StepResult, st *sliceStats) (repro.StepResult, error) {
	fresh, err := s.newSession()
	if err != nil {
		return repro.StepResult{}, err
	}
	if preMan != nil {
		err = fresh.BindSuspended(c.prog, s.cfg.Store, preMan)
	} else {
		err = fresh.Bind(c.prog)
	}
	if err != nil {
		return repro.StepResult{}, err
	}
	sr, err := fresh.Step(s.slice())
	if err != nil {
		return repro.StepResult{}, err
	}
	if sr.Digest == dead.Digest {
		st.bitOK = true
	} else {
		st.bitFail = true
	}
	// Adopt the failed-over copy; the dead worker's Session went down
	// with its process.
	_ = c.sess.Close()
	c.sess = fresh
	return sr, nil
}
