package serve

// Metrics is a snapshot of the server's counters (Server.Stats). All
// counts are cumulative since New unless noted.
type Metrics struct {
	Opened    int64 // sessions admitted
	Closed    int64 // sessions closed
	Completed int64 // sessions whose final result was computed

	Slices       int64 // timeslices executed (including retries)
	Retries      int64 // slices re-run after a worker death
	WorkerDeaths int64 // slices that died mid-execution (injected or real panic)
	Failovers    int64 // sessions re-admitted on a fresh Session after a post-slice death

	// BitEqOK / BitEqFail count failover re-executions whose checkpoint
	// digest did (did not) match the dead worker's attempt. BitEqFail
	// staying zero is the paper's claim made operational: re-running a
	// slice from the last manifest is bit-identical, so retry and
	// failover are safe by construction.
	BitEqOK   int64
	BitEqFail int64

	Evictions int64 // resting checkpoints pushed to the store
	Resumes   int64 // slices that began by reloading a suspended session
	ResumeNS  int64 // wall time of those resumed slices (subset of WallNS)

	CapRejections int64 // opens/runs refused by tenant caps

	ResidentSessions  int64 // sessions currently holding an in-memory image
	ResidentPages     int64 // pages those images pin in memory
	ResidentPeakPages int64 // high-water mark of ResidentPages

	WallNS int64 // total slice wall time measured by Config.Clock
}
