package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro"
)

// testOpts is the machine shape every serve test uses; the server's
// resumes must match the shape its checkpoints were captured under.
func testOpts() []repro.SessionOption {
	return []repro.SessionOption{repro.WithMachine(repro.MachineConfig{CPUsPerNode: 4, MergeWorkers: 1})}
}

// directResult runs maker(arg) uninterrupted on a private session — the
// reference every served result must equal bit-for-bit.
func directResult(t *testing.T, maker ProgramMaker, arg uint64) repro.RunResult {
	t.Helper()
	sess, err := repro.NewSession(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunProgram(maker(arg))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// maxStepPages steps maker(arg) to completion with budget 1 and returns
// the largest resting-image page count seen.
func maxStepPages(t *testing.T, maker ProgramMaker, arg uint64) int {
	t.Helper()
	sess, err := repro.NewSession(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Bind(maker(arg)); err != nil {
		t.Fatal(err)
	}
	max := 0
	for {
		sr, err := sess.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Pages > max {
			max = sr.Pages
		}
		if sr.Done {
			return max
		}
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = repro.NewMemStore()
	}
	if cfg.SessionOpts == nil {
		cfg.SessionOpts = testOpts()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestConfigValidation(t *testing.T) {
	var ce *ConfigError
	if _, err := New(Config{}); !errors.As(err, &ce) || ce.Field != "Store" {
		t.Fatalf("New without store: %v", err)
	}
	if _, err := New(Config{Store: repro.NewMemStore(), Workers: -1}); !errors.As(err, &ce) || ce.Field != "Workers" {
		t.Fatalf("New with negative workers: %v", err)
	}
}

// TestRunQueueRoundRobin checks the dispatch order is FIFO per tenant
// and round-robin across sorted tenant names.
func TestRunQueueRoundRobin(t *testing.T) {
	q := newRunQueue()
	mk := func(tenant string, n int) *session {
		return &session{id: SessionID(fmt.Sprintf("%s/%d", tenant, n)), tenant: tenant}
	}
	for _, c := range []*session{mk("b", 0), mk("a", 0), mk("a", 1), mk("c", 0), mk("a", 2)} {
		q.push(c)
	}
	want := []SessionID{"a/0", "b/0", "c/0", "a/1", "a/2"}
	for i, w := range want {
		c := q.pop()
		if c == nil || c.id != w {
			t.Fatalf("pop %d = %v, want %s", i, c, w)
		}
	}
	if !q.empty() {
		t.Fatal("queue not drained")
	}
}

// TestServeMultiTenant is the core serving check: many sessions for
// several tenants, driven concurrently over a small worker pool, each
// producing exactly the result an uninterrupted private run produces.
func TestServeMultiTenant(t *testing.T) {
	maker := StripeProgram(3, 5, 256)
	s := newTestServer(t, Config{Workers: 3, Slice: 2})
	s.Register("stripe", maker)

	type req struct {
		tenant string
		id     SessionID
		arg    uint64
	}
	var reqs []req
	for ti := 0; ti < 3; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		for k := 0; k < 4; k++ {
			arg := uint64(100*ti + k)
			id, err := s.Open(tenant, "stripe", arg)
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, req{tenant, id, arg})
		}
	}

	results := make([]repro.RunResult, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r req) {
			defer wg.Done()
			res, err := s.Run(r.tenant, r.id)
			if err != nil {
				t.Errorf("run %s: %v", r.id, err)
				return
			}
			results[i] = res
		}(i, r)
	}
	wg.Wait()

	for i, r := range reqs {
		if want := directResult(t, maker, r.arg); results[i] != want {
			t.Errorf("session %s: served %+v, direct %+v", r.id, results[i], want)
		}
	}

	// Redelivery is idempotent: re-running a completed session returns
	// the same result without executing anything.
	before := s.Stats().Slices
	again, err := s.Run(reqs[0].tenant, reqs[0].id)
	if err != nil || again != results[0] {
		t.Fatalf("redelivery: %+v, %v", again, err)
	}
	st := s.Stats()
	if st.Slices != before {
		t.Fatalf("redelivery executed %d extra slices", st.Slices-before)
	}
	if st.Opened != 12 || st.Completed != 12 || st.BitEqFail != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestServeResidentCapBounded is the memory claim: open sessions vastly
// outnumber the resident cap, resident pages stay bounded by the cap
// (plus in-flight workers), and everything still completes bit-exact
// through evict/resume cycles.
func TestServeResidentCapBounded(t *testing.T) {
	const (
		workers     = 2
		residentCap = 3
		sessions    = 16
	)
	maker := StripeProgram(2, 4, 128)
	perPages := maxStepPages(t, maker, 0)

	s := newTestServer(t, Config{Workers: workers, Resident: residentCap, Slice: 1})
	s.Register("stripe", maker)

	ids := make([]SessionID, sessions)
	for i := range ids {
		id, err := s.Open("acme", "stripe", uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	results := make([]repro.RunResult, sessions)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id SessionID) {
			defer wg.Done()
			res, err := s.Run("acme", id)
			if err != nil {
				t.Errorf("run %s: %v", id, err)
				return
			}
			results[i] = res
		}(i, id)
	}
	wg.Wait()

	for i := range ids {
		if want := directResult(t, maker, uint64(i)); results[i] != want {
			t.Errorf("session %d: served %+v, direct %+v", i, results[i], want)
		}
	}
	st := s.Stats()
	if st.ResidentSessions > residentCap {
		t.Errorf("resident sessions %d > cap %d", st.ResidentSessions, residentCap)
	}
	if bound := int64(residentCap+workers) * int64(perPages); st.ResidentPeakPages > bound {
		t.Errorf("peak resident pages %d > bound %d (cap %d + %d workers, %d pages/session)",
			st.ResidentPeakPages, bound, residentCap, workers, perPages)
	}
	if st.Evictions == 0 || st.Resumes == 0 {
		t.Errorf("cap never exercised: %d evictions, %d resumes", st.Evictions, st.Resumes)
	}
	if st.BitEqFail != 0 {
		t.Errorf("%d failover digest mismatches", st.BitEqFail)
	}
}

func TestServeTenantCaps(t *testing.T) {
	maker := StripeProgram(2, 3, 64)

	t.Run("open", func(t *testing.T) {
		s := newTestServer(t, Config{})
		s.Register("stripe", maker)
		s.SetCaps("acme", TenantCaps{MaxOpen: 2})
		if _, err := s.Open("acme", "stripe", 1); err != nil {
			t.Fatal(err)
		}
		id2, err := s.Open("acme", "stripe", 2)
		if err != nil {
			t.Fatal(err)
		}
		var ce *CapError
		if _, err := s.Open("acme", "stripe", 3); !errors.As(err, &ce) || ce.Cap != "open" {
			t.Fatalf("third open: %v", err)
		}
		// Caps are per tenant: another tenant is unaffected.
		if _, err := s.Open("rival", "stripe", 3); err != nil {
			t.Fatalf("other tenant: %v", err)
		}
		// Closing frees an admission slot.
		if err := s.CloseSession("acme", id2); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Open("acme", "stripe", 3); err != nil {
			t.Fatalf("open after close: %v", err)
		}
	})

	t.Run("vt", func(t *testing.T) {
		s := newTestServer(t, Config{})
		s.Register("stripe", maker)
		s.SetCaps("acme", TenantCaps{MaxVT: 1})
		id1, err := s.Open("acme", "stripe", 1)
		if err != nil {
			t.Fatal(err)
		}
		id2, err := s.Open("acme", "stripe", 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run("acme", id1); err != nil {
			t.Fatalf("first run within budget: %v", err)
		}
		var ce *CapError
		if _, err := s.Run("acme", id2); !errors.As(err, &ce) || ce.Cap != "vt" {
			t.Fatalf("run past vt budget: %v", err)
		}
		if _, err := s.Open("acme", "stripe", 3); !errors.As(err, &ce) || ce.Cap != "vt" {
			t.Fatalf("open past vt budget: %v", err)
		}
	})

	t.Run("pages", func(t *testing.T) {
		s := newTestServer(t, Config{})
		s.Register("stripe", maker)
		s.SetCaps("acme", TenantCaps{MaxPages: 1})
		id, err := s.Open("acme", "stripe", 1)
		if err != nil {
			t.Fatal(err)
		}
		var ce *CapError
		if _, err := s.Run("acme", id); !errors.As(err, &ce) || ce.Cap != "pages" {
			t.Fatalf("run past pages cap: %v", err)
		}
	})

	t.Run("wall", func(t *testing.T) {
		// A fake clock charging a fixed cost per reading; the budget
		// admits the first slice and refuses the next dispatch.
		var now int64
		var mu sync.Mutex
		clock := func() int64 {
			mu.Lock()
			defer mu.Unlock()
			now += 1000
			return now
		}
		s := newTestServer(t, Config{Slice: 1, Clock: clock})
		s.Register("stripe", maker)
		s.SetCaps("acme", TenantCaps{MaxWallNS: 1})
		id, err := s.Open("acme", "stripe", 1)
		if err != nil {
			t.Fatal(err)
		}
		var ce *CapError
		if _, err := s.Run("acme", id); !errors.As(err, &ce) || ce.Cap != "wall" {
			t.Fatalf("run past wall budget: %v", err)
		}
		if st := s.Stats(); st.WallNS == 0 {
			t.Error("clock configured but no wall time accounted")
		}
	})
}

func TestServeEvictCloseAndIsolation(t *testing.T) {
	maker := StripeProgram(2, 3, 64)
	s := newTestServer(t, Config{})
	s.Register("stripe", maker)
	id, err := s.Open("acme", "stripe", 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("acme", id); err != nil {
		t.Fatal(err)
	}

	// Tenants cannot see (or evict, or close) each other's sessions,
	// and the error does not reveal whether the ID exists.
	wantMsg := fmt.Sprintf("serve: tenant rival has no session %s", id)
	if err := s.Evict("rival", id); err == nil || err.Error() != wantMsg {
		t.Fatalf("cross-tenant evict: %v", err)
	}
	if _, err := s.Run("rival", "rival/0"); err == nil {
		t.Fatal("unknown id ran")
	}

	// A completed session still holds its final image until evicted.
	if st := s.Stats(); st.ResidentSessions != 1 {
		t.Fatalf("resident after run: %+v", st)
	}
	if err := s.Evict("acme", id); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ResidentSessions != 0 || st.Evictions != 1 {
		t.Fatalf("resident after evict: %+v", st)
	}
	if err := s.Evict("acme", id); err != nil {
		t.Fatalf("evicting a cold session: %v", err)
	}

	if err := s.CloseSession("acme", id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("acme", id); err == nil {
		t.Fatal("closed session ran")
	}

	s.Shutdown()
	if _, err := s.Open("acme", "stripe", 8); !errors.Is(err, ErrClosed) {
		t.Fatalf("open after shutdown: %v", err)
	}
}

// TestServeGCKeepsLiveChains closes half the sessions, collects, and
// checks every surviving session's checkpoint chain is still fully
// loadable while the closed sessions' manifests are gone.
func TestServeGCKeepsLiveChains(t *testing.T) {
	maker := StripeProgram(2, 4, 128)
	store := repro.NewMemStore()
	s := newTestServer(t, Config{Store: store, Workers: 2, Resident: 1, Slice: 1})
	s.Register("stripe", maker)

	const n = 6
	ids := make([]SessionID, n)
	for i := range ids {
		id, err := s.Open("acme", "stripe", uint64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id SessionID) {
			defer wg.Done()
			if _, err := s.Run("acme", id); err != nil {
				t.Errorf("run %s: %v", id, err)
			}
		}(id)
	}
	wg.Wait()

	// Push every final image into the store so each session has a chain
	// head, then record which manifests must survive and which may go.
	for _, id := range ids {
		if err := s.Evict("acme", id); err != nil {
			t.Fatal(err)
		}
	}
	headOf := func(id SessionID) repro.ChunkKey {
		s.mu.Lock()
		defer s.mu.Unlock()
		m := s.sessions[id].sess.LastManifest()
		if m == nil {
			t.Fatalf("session %s has no chain head", id)
		}
		return m.Key()
	}
	var live, dead []repro.ChunkKey
	for i, id := range ids {
		key := headOf(id)
		if i%2 == 0 {
			live = append(live, key)
			continue
		}
		dead = append(dead, key)
		if err := s.CloseSession("acme", id); err != nil {
			t.Fatal(err)
		}
	}

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed == 0 {
		t.Error("closing half the sessions freed nothing")
	}
	for _, key := range live {
		m, err := repro.LoadManifest(store, key)
		if err != nil {
			t.Fatalf("live chain head %s lost: %v", key, err)
		}
		if _, err := repro.LoadImage(store, m); err != nil {
			t.Fatalf("live image %s lost: %v", key, err)
		}
	}
	for _, key := range dead {
		if _, err := repro.LoadManifest(store, key); err == nil {
			t.Errorf("closed session's manifest %s survived GC", key)
		}
	}
}
