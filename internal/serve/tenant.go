package serve

import "fmt"

// TenantCaps bounds one tenant's use of the server. The zero value is
// uncapped. Caps gate admission and availability only: they can refuse
// or cut off work, but they never change what an admitted session
// computes — results stay a pure function of the session's program and
// arguments.
type TenantCaps struct {
	// MaxOpen bounds concurrently open sessions (0 = unlimited).
	MaxOpen int
	// MaxPages bounds the resting checkpoint size of any one session in
	// whole pages; a slice that rests above it fails with *CapError.
	MaxPages int
	// MaxVT bounds the total virtual time of the tenant's completed
	// sessions; once exhausted, new opens and runs are refused.
	MaxVT int64
	// MaxWallNS bounds the wall-clock execution time charged to the
	// tenant (measured by Config.Clock around each slice; unenforced
	// when no clock is configured).
	MaxWallNS int64
}

// CapError reports a request refused or cut off by a tenant cap.
type CapError struct {
	Tenant string
	Cap    string // "open", "pages", "vt", "wall"
	Limit  int64
	Used   int64
}

func (e *CapError) Error() string {
	return fmt.Sprintf("serve: tenant %s over %s cap: %d of %d used", e.Tenant, e.Cap, e.Used, e.Limit)
}

// tenant is the server-side accounting record for one tenant.
type tenant struct {
	name string
	caps TenantCaps

	seq      uint64 // next session number; IDs are dense and deterministic per tenant
	open     int    // currently open sessions
	vtUsed   int64  // virtual time of completed sessions
	wallUsed int64  // wall time charged by Config.Clock
}

// admission returns the cap that refuses a new open, or nil.
func (t *tenant) admission() *CapError {
	if t.caps.MaxOpen > 0 && t.open >= t.caps.MaxOpen {
		return &CapError{Tenant: t.name, Cap: "open", Limit: int64(t.caps.MaxOpen), Used: int64(t.open)}
	}
	return t.budget()
}

// budget returns the exhausted cumulative cap (vt or wall), or nil.
// Unlike admission it does not count open sessions, so an already-open
// session can still be driven while head-room lasts.
func (t *tenant) budget() *CapError {
	if t.caps.MaxVT > 0 && t.vtUsed >= t.caps.MaxVT {
		return &CapError{Tenant: t.name, Cap: "vt", Limit: t.caps.MaxVT, Used: t.vtUsed}
	}
	if t.caps.MaxWallNS > 0 && t.wallUsed >= t.caps.MaxWallNS {
		return &CapError{Tenant: t.name, Cap: "wall", Limit: t.caps.MaxWallNS, Used: t.wallUsed}
	}
	return nil
}
