package serve

import "repro"

// StripeProgram returns a ProgramMaker for the striped-array workload
// the server's tests, bench table and detserved register by default:
// threads sweep disjoint stripes of a words-long shared array each
// phase and fold per-thread sums into a running checksum; Result mixes
// the checksum with a sample of the final array. arg seeds the initial
// contents, so every session computes a different — but deterministic —
// answer, which is what lets callers assert served results against
// uninterrupted single-tenant reruns bit-for-bit.
func StripeProgram(threads, phases, words int) ProgramMaker {
	return func(arg uint64) repro.Program {
		var arr, acc repro.Addr
		return repro.Program{
			Phases: phases,
			Layout: func(rt *repro.RT) {
				arr = rt.Alloc(uint64(8*words), 8)
				acc = rt.Alloc(8, 8)
			},
			Init: func(rt *repro.RT) {
				for i := 0; i < words; i++ {
					rt.Env().WriteU64(arr+repro.Addr(8*i), (uint64(i)+arg)*2654435761)
				}
				rt.Env().WriteU64(acc, arg|1)
			},
			Phase: func(rt *repro.RT, p int) error {
				rets, err := rt.ParallelDo(threads, func(t *repro.Thread) uint64 {
					lo, hi := t.ID*words/threads, (t.ID+1)*words/threads
					var sum uint64
					for i := lo; i < hi; i++ {
						a := arr + repro.Addr(8*i)
						v := t.Env().ReadU64(a)*6364136223846793005 + uint64(p) + 1
						t.Env().WriteU64(a, v)
						sum += v
					}
					return sum
				})
				if err != nil {
					return err
				}
				h := rt.Env().ReadU64(acc)
				for _, r := range rets {
					h = h*31 + r
				}
				rt.Env().WriteU64(acc, h)
				return nil
			},
			Result: func(rt *repro.RT) uint64 {
				h := rt.Env().ReadU64(acc)
				for i := 0; i < words; i += 7 {
					h = h*1099511628211 + rt.Env().ReadU64(arr+repro.Addr(8*i))
				}
				return h
			},
		}
	}
}
