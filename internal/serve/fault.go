package serve

// Fault injection: tests and the bench table use a FaultHook to kill
// workers at chosen points and check that the determinism guarantee
// holds operationally — a re-run slice or a failed-over session is
// bit-identical to the attempt the dead worker made.

// FaultAction tells the server how the worker assigned to a slice dies.
type FaultAction int

const (
	// FaultNone runs the slice normally.
	FaultNone FaultAction = iota
	// FaultCrashMid kills the worker mid-slice: the slice's first phase
	// panics before completing, the pre-slice checkpoint stays intact,
	// and the server re-runs the slice on the spot.
	FaultCrashMid
	// FaultCrashAfter kills the worker after the slice completes but
	// before it reports back: the server fails over to a fresh Session
	// re-admitted from the pre-slice manifest, re-runs the slice, and
	// asserts the re-run's checkpoint digest equals the dead worker's.
	FaultCrashAfter
)

// FaultEvent describes the slice about to be dispatched.
type FaultEvent struct {
	Tenant  string
	Session SessionID
	Phase   int   // barrier the session rests at (-1 when still in the store)
	Slice   int64 // global slice ordinal
}

// FaultHook decides the fate of each slice. It runs under the server
// mutex and must not call back into the server.
type FaultHook func(FaultEvent) FaultAction
