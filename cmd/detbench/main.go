// Detbench regenerates the tables and figures of the paper's evaluation
// (§6). Each experiment prints the same rows or series the paper
// reports; EXPERIMENTS.md records a captured run next to the paper's
// numbers.
//
// Usage:
//
//	detbench [-run id[,id...]] [-quick] [-cpus n] [-root dir]
//
// With no -run flag every experiment runs in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	cpus := flag.Int("cpus", 12, "modelled CPU count for fig7/fig8")
	root := flag.String("root", ".", "repository root (for tab3)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := bench.Experiments()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}
	opts := bench.Options{Quick: *quick, CPUs: *cpus}
	for i, id := range ids {
		t, err := bench.Run(strings.TrimSpace(id), *root, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Format())
	}
}
