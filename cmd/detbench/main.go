// Detbench regenerates the tables and figures of the paper's evaluation
// (§6). Each experiment prints the same rows or series the paper
// reports; EXPERIMENTS.md records a captured run next to the paper's
// numbers.
//
// Usage:
//
//	detbench [-run id[,id...]] [-quick] [-cpus n] [-root dir] [-json]
//
// With no -run flag every experiment runs in paper order. With -json the
// selected tables are emitted as one JSON array instead of aligned text,
// which is how `make bench-json` produces the committed BENCH artifacts
// tracking the perf trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	cpus := flag.Int("cpus", 12, "modelled CPU count for fig7/fig8")
	root := flag.String("root", ".", "repository root (for tab3)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "emit the result tables as a JSON array")
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := bench.Experiments()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}
	opts := bench.Options{Quick: *quick, CPUs: *cpus}
	var tables []bench.Table
	for i, id := range ids {
		t, err := bench.Run(strings.TrimSpace(id), *root, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			tables = append(tables, t)
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Format())
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
