// Detshell is the Unix-style shell of the Determinator prototype (§5):
// scripted command execution over the emulated process and file system
// runtime. Every command runs as a forked child process with its own
// file system replica; output and file effects reach the shell at wait
// time, so a script's output is byte-identical on every run.
//
// Usage:
//
//	echo hello | go run ./cmd/detshell
//	go run ./cmd/detshell < script.sh
//
// A script can also run as a checkpointable phased program against a
// content-addressed store on disk, one phase per line (see ckpt.go):
//
//	go run ./cmd/detshell ckpt save DIR < part1.sh
//	go run ./cmd/detshell ckpt resume DIR < part2.sh
//
// Commands: echo, cat, wc, ls, write FILE TEXT..., append FILE TEXT...,
// rm FILE, stat FILE, par N CMD... (N copies in parallel), crack PREFIX,
// help, exit. Redirection: CMD ... > FILE. Like the paper's shell, 'ps'
// would need nondeterministic privileges and is deliberately absent.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/uproc"
	"repro/internal/workload"
)

func main() {
	if args := os.Args[1:]; len(args) > 0 && args[0] == "ckpt" {
		os.Exit(ckptMain(args[1:]))
	}
	reg := uproc.NewRegistry()
	registerCommands(reg)
	reg.Register("sh", shellMain)
	res := uproc.Boot(uproc.BootConfig{
		Kernel:   kernel.Config{CPUsPerNode: 4},
		Registry: reg,
		Stdin:    os.Stdin,
		Stdout:   os.Stdout,
	}, "sh")
	os.Exit(res.ExitStatus)
}

// shellMain is the interpreter loop, running as the init process.
func shellMain(p *uproc.Proc) int {
	status := 0
	for {
		line, ok := p.ReadLine()
		if !ok {
			return status
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "exit" {
			code := 0
			if len(fields) > 1 {
				code, _ = strconv.Atoi(fields[1])
			}
			return code
		}
		status = runCommand(p, fields)
	}
}

// runCommand executes one command line in a child process, handling
// `|` pipelines, `> file` redirection and the `par` prefix.
func runCommand(p *uproc.Proc, fields []string) int {
	redirect := ""
	if n := len(fields); n >= 2 && fields[n-2] == ">" {
		redirect = fields[n-1]
		fields = fields[:n-2]
	}
	if len(fields) == 0 {
		return 0
	}
	if hasPipe(fields) {
		return runPipeline(p, fields, redirect)
	}
	if fields[0] == "par" && len(fields) >= 3 {
		return runParallel(p, fields[1:])
	}

	args := append([]string{}, fields[1:]...)
	if redirect != "" {
		args = append(args, "\x00redirect", redirect)
	}
	pid, err := p.ForkExec(fields[0], args...)
	if err != nil {
		p.ConsoleWrite([]byte("sh: " + err.Error() + "\n"))
		return 127
	}
	status, conflicts, err := p.Waitpid(pid)
	if err != nil {
		p.ConsoleWrite([]byte("sh: " + err.Error() + "\n"))
		return 126
	}
	for _, c := range conflicts {
		p.ConsoleWrite([]byte("sh: conflict on " + c.Name + "\n"))
	}
	return status
}

func hasPipe(fields []string) bool {
	for _, f := range fields {
		if f == "|" {
			return true
		}
	}
	return false
}

// runPipeline splits `a ... | b ... | c ...` into stages and runs them
// as a batch pipeline (§2.3: pipes with one process per end are
// deterministic). Redirection applies to the final stage.
func runPipeline(p *uproc.Proc, fields []string, redirect string) int {
	var stages [][]string
	stage := []string{}
	for _, f := range fields {
		if f == "|" {
			if len(stage) == 0 {
				p.ConsoleWrite([]byte("sh: empty pipeline stage\n"))
				return 2
			}
			stages = append(stages, stage)
			stage = []string{}
			continue
		}
		stage = append(stage, f)
	}
	if len(stage) == 0 {
		p.ConsoleWrite([]byte("sh: empty pipeline stage\n"))
		return 2
	}
	if redirect != "" {
		stage = append(stage, "\x00redirect", redirect)
	}
	stages = append(stages, stage)
	status, err := p.Pipeline(stages)
	if err != nil {
		p.ConsoleWrite([]byte("sh: " + err.Error() + "\n"))
		return 127
	}
	return status
}

// runParallel forks N copies of a command and waits for all, the
// parallel-make pattern: their file outputs reconcile at wait.
func runParallel(p *uproc.Proc, fields []string) int {
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 1 || len(fields) < 2 {
		p.ConsoleWrite([]byte("sh: usage: par N CMD [ARGS...]\n"))
		return 2
	}
	var pids []int
	for i := 0; i < n; i++ {
		args := append(append([]string{}, fields[2:]...), strconv.Itoa(i))
		pid, err := p.ForkExec(fields[1], args...)
		if err != nil {
			p.ConsoleWrite([]byte("sh: " + err.Error() + "\n"))
			return 127
		}
		pids = append(pids, pid)
	}
	worst := 0
	for _, pid := range pids {
		status, conflicts, err := p.Waitpid(pid)
		if err != nil {
			p.ConsoleWrite([]byte("sh: " + err.Error() + "\n"))
			return 126
		}
		for _, c := range conflicts {
			p.ConsoleWrite([]byte("sh: conflict on " + c.Name + "\n"))
		}
		if status != 0 {
			worst = status
		}
	}
	return worst
}

// emit writes command output to the console or to a redirect target.
func emit(p *uproc.Proc, out string) int {
	args := p.Args()
	for i := 0; i+1 < len(args); i++ {
		if args[i] == "\x00redirect" {
			if err := p.FS().WriteFile(args[i+1], []byte(out)); err != nil {
				p.ConsoleWrite([]byte(args[0] + ": " + err.Error() + "\n"))
				return 1
			}
			return 0
		}
	}
	p.ConsoleWrite([]byte(out))
	return 0
}

// cleanArgs strips the redirect marker from argv.
func cleanArgs(p *uproc.Proc) []string {
	args := p.Args()[1:]
	for i := 0; i+1 < len(args); i++ {
		if args[i] == "\x00redirect" {
			return args[:i]
		}
	}
	return args
}

func registerCommands(reg *uproc.Registry) {
	reg.Register("echo", func(p *uproc.Proc) int {
		return emit(p, strings.Join(cleanArgs(p), " ")+"\n")
	})
	reg.Register("cat", func(p *uproc.Proc) int {
		args := cleanArgs(p)
		if len(args) == 0 {
			return emit(p, slurpStdin(p)) // pipeline stage
		}
		var out strings.Builder
		for _, name := range args {
			data, err := p.FS().ReadFile(name)
			if err != nil {
				p.ConsoleWrite([]byte("cat: " + name + ": " + err.Error() + "\n"))
				return 1
			}
			out.Write(data)
		}
		return emit(p, out.String())
	})
	reg.Register("wc", func(p *uproc.Proc) int {
		args := cleanArgs(p)
		count := func(name, data string) string {
			lines := strings.Count(data, "\n")
			words := len(strings.Fields(data))
			return fmt.Sprintf("%7d %7d %7d %s\n", lines, words, len(data), name)
		}
		if len(args) == 0 {
			return emit(p, count("-", slurpStdin(p)))
		}
		var out strings.Builder
		for _, name := range args {
			data, err := p.FS().ReadFile(name)
			if err != nil {
				p.ConsoleWrite([]byte("wc: " + name + ": " + err.Error() + "\n"))
				return 1
			}
			out.WriteString(count(name, string(data)))
		}
		return emit(p, out.String())
	})
	reg.Register("grep", func(p *uproc.Proc) int {
		args := cleanArgs(p)
		if len(args) < 1 {
			p.ConsoleWrite([]byte("grep: usage: ... | grep PATTERN\n"))
			return 2
		}
		var out strings.Builder
		matched := false
		for {
			line, ok := p.ReadLine()
			if !ok && line == "" {
				break
			}
			if strings.Contains(line, args[0]) {
				out.WriteString(line + "\n")
				matched = true
			}
			if !ok {
				break
			}
		}
		emit(p, out.String())
		if matched {
			return 0
		}
		return 1
	})
	reg.Register("sort", func(p *uproc.Proc) int {
		var lines []string
		for {
			line, ok := p.ReadLine()
			if !ok && line == "" {
				break
			}
			lines = append(lines, line)
			if !ok {
				break
			}
		}
		sortStrings(lines)
		var out strings.Builder
		for _, l := range lines {
			out.WriteString(l + "\n")
		}
		return emit(p, out.String())
	})
	reg.Register("ls", func(p *uproc.Proc) int {
		var out strings.Builder
		for _, info := range p.FS().List() {
			flag := " "
			if info.Conflicted {
				flag = "!"
			}
			fmt.Fprintf(&out, "%s %8d  %s\n", flag, info.Size, info.Name)
		}
		return emit(p, out.String())
	})
	reg.Register("write", func(p *uproc.Proc) int {
		args := cleanArgs(p)
		if len(args) < 1 {
			p.ConsoleWrite([]byte("write: usage: write FILE [TEXT...]\n"))
			return 2
		}
		text := strings.Join(args[1:], " ") + "\n"
		if err := p.FS().WriteFile(args[0], []byte(text)); err != nil {
			p.ConsoleWrite([]byte("write: " + err.Error() + "\n"))
			return 1
		}
		return 0
	})
	reg.Register("append", func(p *uproc.Proc) int {
		args := cleanArgs(p)
		if len(args) < 1 {
			p.ConsoleWrite([]byte("append: usage: append FILE [TEXT...]\n"))
			return 2
		}
		fsys := p.FS()
		if _, err := fsys.Stat(args[0]); err != nil {
			if err := fsys.CreateAppendOnly(args[0]); err != nil {
				p.ConsoleWrite([]byte("append: " + err.Error() + "\n"))
				return 1
			}
		}
		if err := fsys.Append(args[0], []byte(strings.Join(args[1:], " ")+"\n")); err != nil {
			p.ConsoleWrite([]byte("append: " + err.Error() + "\n"))
			return 1
		}
		return 0
	})
	reg.Register("rm", func(p *uproc.Proc) int {
		for _, name := range cleanArgs(p) {
			if err := p.FS().Unlink(name); err != nil {
				p.ConsoleWrite([]byte("rm: " + name + ": " + err.Error() + "\n"))
				return 1
			}
		}
		return 0
	})
	reg.Register("stat", func(p *uproc.Proc) int {
		var out strings.Builder
		for _, name := range cleanArgs(p) {
			info, err := p.FS().Stat(name)
			if err != nil {
				p.ConsoleWrite([]byte("stat: " + name + ": " + err.Error() + "\n"))
				return 1
			}
			fmt.Fprintf(&out, "%s: %d bytes, version %d, append-only=%v, conflicted=%v\n",
				info.Name, info.Size, info.Version, info.AppendOnly, info.Conflicted)
		}
		return emit(p, out.String())
	})
	reg.Register("crack", func(p *uproc.Proc) int {
		// A miniature of the md5 benchmark: find the planted candidate.
		args := cleanArgs(p)
		size := 1 << 12
		if len(args) > 0 {
			if v, err := strconv.Atoi(args[0]); err == nil && v > 0 {
				size = v
			}
		}
		found := workload.MD5Seq(size)
		return emit(p, fmt.Sprintf("cracked: candidate %d of %d\n", found, size))
	})
	reg.Register("help", func(p *uproc.Proc) int {
		return emit(p, "commands: echo cat wc grep sort ls write append rm stat crack par help exit\n"+
			"redirection: CMD ... > FILE   pipelines: A | B | C   parallel: par N CMD ARGS...\n")
	})
	_ = fs.ErrNotFound
}

// slurpStdin reads this process's standard input to EOF.
func slurpStdin(p *uproc.Proc) string {
	var out strings.Builder
	buf := make([]byte, 512)
	for {
		n := p.ConsoleRead(buf)
		if n == 0 {
			return out.String()
		}
		out.Write(buf[:n])
	}
}

// sortStrings is a small insertion sort (keeping the shell stdlib-lean
// and deterministic).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
