package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// ckpt runs one save or resume against dir, feeding script to stdin,
// and returns the console output.
func ckpt(t *testing.T, dir, verb, script string) string {
	t.Helper()
	store, err := repro.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	switch verb {
	case "save":
		err = ckptSave(store, dir, strings.NewReader(script), &out)
	case "resume":
		err = ckptResume(store, dir, strings.NewReader(script), &out)
	default:
		t.Fatalf("bad verb %q", verb)
	}
	if err != nil {
		t.Fatalf("ckpt %s: %v", verb, err)
	}
	return out.String()
}

func TestCkptSaveResume(t *testing.T) {
	dir := t.TempDir()
	if out := ckpt(t, dir, "save", "write f hello world\nappend log one\n"); out != "" {
		t.Errorf("save output = %q, want none", out)
	}
	out := ckpt(t, dir, "resume", "append log two\ncat f\ncat log\n")
	if out != "hello world\none\ntwo\n" {
		t.Errorf("first resume output = %q", out)
	}
	// A resume with no new lines just replays nothing: all prior output
	// was flushed at its own barrier.
	if out := ckpt(t, dir, "resume", ""); out != "" {
		t.Errorf("empty resume output = %q, want none", out)
	}
	// The chain head advanced: a further resume sees both appends.
	if out := ckpt(t, dir, "resume", "cat log\n"); out != "one\ntwo\n" {
		t.Errorf("second resume output = %q", out)
	}
}

func TestCkptManifestChains(t *testing.T) {
	dir := t.TempDir()
	ckpt(t, dir, "save", "write f seed\n")
	ckpt(t, dir, "resume", "append l x\n")
	ckpt(t, dir, "resume", "append l y\n")

	store, err := repro.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	key, err := repro.ParseChunkKey(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.LoadManifest(store, key)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq() != 2 {
		t.Errorf("chain head seq = %d, want 2", m.Seq())
	}
	depth := 0
	for {
		parent, ok := m.Parent()
		if !ok {
			break
		}
		depth++
		if m, err = repro.LoadManifest(store, parent); err != nil {
			t.Fatalf("walking chain: %v", err)
		}
	}
	if depth != 2 {
		t.Errorf("chain depth = %d, want 2 (save + two resumes)", depth)
	}
}

func TestCkptResumeRejectsTruncatedHead(t *testing.T) {
	// Regression: a crashed save that used plain truncate-and-write could
	// leave half a key in MANIFEST; resume must refuse it with the typed
	// head error instead of a generic parse failure or a wrong chain.
	dir := t.TempDir()
	ckpt(t, dir, "save", "write f seed\n")
	head := filepath.Join(dir, manifestFile)
	raw, err := os.ReadFile(head)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(head, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := repro.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = ckptResume(store, dir, strings.NewReader("cat f\n"), &strings.Builder{})
	var he *repro.HeadError
	if !errors.As(err, &he) {
		t.Fatalf("resume with truncated head: error %v (%T), want *repro.HeadError", err, err)
	}
}

func TestCkptSaveEmptyScriptFails(t *testing.T) {
	dir := t.TempDir()
	store, err := repro.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckptSave(store, dir, strings.NewReader("# only a comment\n"), &strings.Builder{}); err == nil {
		t.Fatal("save of empty script succeeded, want error")
	}
}
