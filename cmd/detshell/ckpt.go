package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

// The ckpt subcommand runs a shell script as a checkpointable phased
// program — one phase per line — against a content-addressed store on
// disk:
//
//	echo 'write f hello' | detshell ckpt save DIR
//	echo 'cat f'         | detshell ckpt resume DIR
//
// save runs the script and checkpoints the whole machine (process tree,
// file system, console cursors) into DIR, recording the manifest key in
// DIR/MANIFEST. resume continues that exact machine, feeds it the new
// script lines, and — when there are new lines — saves a fresh
// checkpoint chained onto the old one, so repeated resumes build an
// incremental image chain in the same store.

// manifestFile is where the current chain head's key is recorded.
const manifestFile = "MANIFEST"

func ckptMain(args []string) int {
	if len(args) != 2 || (args[0] != "save" && args[0] != "resume") {
		fmt.Fprintln(os.Stderr, "usage: detshell ckpt save DIR | detshell ckpt resume DIR")
		return 2
	}
	dir := args[1]
	store, err := repro.OpenDirStore(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detshell: ckpt:", err)
		return 1
	}
	switch args[0] {
	case "save":
		err = ckptSave(store, dir, os.Stdin, os.Stdout)
	case "resume":
		err = ckptResume(store, dir, os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "detshell: ckpt:", err)
		return 1
	}
	return 0
}

// ckptSave runs the script from r as phases of a fresh machine and
// checkpoints at the final barrier.
func ckptSave(store repro.BlobStore, dir string, r io.Reader, out io.Writer) error {
	lines := scriptLines(r)
	if len(lines) == 0 {
		return fmt.Errorf("empty script: nothing to checkpoint")
	}
	prog := shellProgram(0, lines)
	s, err := repro.NewSession(shellSessionOpts(out)...)
	if err != nil {
		return err
	}
	if _, err := s.RunToCheckpoint(prog, prog.Phases); err != nil {
		return err
	}
	m, err := s.SaveTo(store)
	if err != nil {
		return err
	}
	if err := writeManifestKey(dir, m); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "detshell: saved checkpoint %s (%d phases, seq %d) to %s\n",
		m.Key(), prog.Phases, m.Seq(), dir)
	return nil
}

// ckptResume continues the machine recorded in dir/MANIFEST, runs any
// new script lines from r as further phases, and (when there are new
// lines) chains a fresh checkpoint onto the old one.
func ckptResume(store repro.BlobStore, dir string, r io.Reader, out io.Writer) error {
	m, err := repro.ReadManifestHead(store, filepath.Join(dir, manifestFile))
	if err != nil {
		return err
	}
	// The phase the image resumes at tells us how many script lines the
	// saved run already executed.
	img, err := repro.LoadImage(store, m)
	if err != nil {
		return err
	}
	done := img.Phase

	lines := scriptLines(r)
	prog := shellProgram(done, lines)
	opts := shellSessionOpts(out)
	if len(lines) > 0 {
		opts = append(opts, repro.WithCheckpointAfter(prog.Phases))
	}
	s, err := repro.NewSession(opts...)
	if err != nil {
		return err
	}
	if _, err := s.ResumeFrom(store, m, prog); err != nil {
		return err
	}
	if len(lines) == 0 {
		fmt.Fprintf(os.Stderr, "detshell: resumed checkpoint %s (no new phases)\n", m.Key())
		return nil
	}
	m2, err := s.SaveTo(store)
	if err != nil {
		return err
	}
	if err := writeManifestKey(dir, m2); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "detshell: resumed %s, saved %s (%d phases, seq %d)\n",
		m.Key(), m2.Key(), prog.Phases, m2.Seq())
	return nil
}

// shellProgram builds the phased form of the shell: phases [0, done) ran
// before the checkpoint being resumed (they are never invoked again);
// each later phase executes one script line through the ordinary command
// interpreter.
func shellProgram(done int, lines []string) repro.Program {
	reg := repro.NewRegistry()
	registerCommands(reg)
	phases := make([]repro.UprocPhase, 0, done+len(lines))
	for i := 0; i < done; i++ {
		i := i
		phases = append(phases, func(p *repro.Proc) error {
			return fmt.Errorf("phase %d already ran before the checkpoint", i)
		})
	}
	for _, line := range lines {
		line := line
		phases = append(phases, func(p *repro.Proc) error {
			runCommand(p, strings.Fields(line)) // shell semantics: a failing command is not fatal
			return nil
		})
	}
	return repro.UprocProgram(reg, []string{"sh"}, phases)
}

// shellSessionOpts is the session configuration both save and resume use
// (resume must match the machine shape the image was captured under).
func shellSessionOpts(out io.Writer) []repro.SessionOption {
	return []repro.SessionOption{
		repro.WithMachine(repro.MachineConfig{CPUsPerNode: 4}),
		repro.WithConsole(nil, out),
	}
}

// scriptLines reads a shell script: blank lines and comments are
// dropped, and an exit command ends the script.
func scriptLines(r io.Reader) []string {
	var lines []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Fields(line)[0] == "exit" {
			break
		}
		lines = append(lines, line)
	}
	return lines
}

// writeManifestKey records the chain head in dir/MANIFEST atomically —
// a crashed save leaves the old head intact rather than a truncated key
// that would strand the whole chain.
func writeManifestKey(dir string, m *repro.Manifest) error {
	return repro.WriteManifestHead(filepath.Join(dir, manifestFile), m)
}
