package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/uproc"
)

// runScript executes a shell script and returns its console output.
func runScript(t *testing.T, script string) (int, string) {
	t.Helper()
	reg := uproc.NewRegistry()
	registerCommands(reg)
	reg.Register("sh", shellMain)
	var out bytes.Buffer
	res := uproc.Boot(uproc.BootConfig{
		Kernel:   kernel.Config{CPUsPerNode: 2},
		Registry: reg,
		Stdin:    strings.NewReader(script),
		Stdout:   &out,
	}, "sh")
	if res.Run.Status != kernel.StatusHalted {
		t.Fatalf("shell stopped with %v: %v", res.Run.Status, res.Run.Err)
	}
	return res.ExitStatus, out.String()
}

func TestShellEcho(t *testing.T) {
	_, out := runScript(t, "echo hello world\n")
	if out != "hello world\n" {
		t.Errorf("out = %q", out)
	}
}

func TestShellWriteCatRoundTrip(t *testing.T) {
	_, out := runScript(t, "write f.txt some content\ncat f.txt\n")
	if out != "some content\n" {
		t.Errorf("out = %q", out)
	}
}

func TestShellRedirection(t *testing.T) {
	_, out := runScript(t, "echo redirected > f\ncat f\n")
	if out != "redirected\n" {
		t.Errorf("out = %q", out)
	}
}

func TestShellPipeline(t *testing.T) {
	_, out := runScript(t,
		"append lines cherry\nappend lines apple\nappend lines banana\n"+
			"cat lines | sort\n")
	if out != "apple\nbanana\ncherry\n" {
		t.Errorf("sorted pipeline out = %q", out)
	}
}

func TestShellPipelineGrepWc(t *testing.T) {
	_, out := runScript(t,
		"append log alpha ERROR one\nappend log beta ok\nappend log gamma ERROR two\n"+
			"cat log | grep ERROR | wc\n")
	if !strings.Contains(out, "      2") {
		t.Errorf("grep|wc out = %q, want 2 lines counted", out)
	}
}

func TestShellParallelOutputsAreUnits(t *testing.T) {
	_, out := runScript(t, "par 3 echo job\n")
	if out != "job 0\njob 1\njob 2\n" {
		t.Errorf("par out = %q (outputs must appear as ordered units)", out)
	}
}

func TestShellConflictReported(t *testing.T) {
	// Two parallel writers to the same file: the shell reports the
	// conflict instead of silently keeping one.
	_, out := runScript(t, "par 2 write same.txt data\nls\n")
	if !strings.Contains(out, "conflict on same.txt") {
		t.Errorf("conflict not reported: %q", out)
	}
	if !strings.Contains(out, "! ") {
		t.Errorf("ls does not flag the conflicted file: %q", out)
	}
}

func TestShellExitStatus(t *testing.T) {
	status, _ := runScript(t, "exit 3\n")
	if status != 3 {
		t.Errorf("exit status = %d, want 3", status)
	}
}

func TestShellUnknownCommand(t *testing.T) {
	_, out := runScript(t, "frobnicate\n")
	if !strings.Contains(out, "sh: ") {
		t.Errorf("unknown command not reported: %q", out)
	}
}

func TestShellDeterministicAcrossRuns(t *testing.T) {
	script := "par 4 echo x\nappend l a\nappend l b\ncat l | sort | wc\nls\n"
	_, first := runScript(t, script)
	for i := 0; i < 3; i++ {
		if _, out := runScript(t, script); out != first {
			t.Fatalf("run %d differs:\n%q\nvs\n%q", i, out, first)
		}
	}
}

func TestShellCrack(t *testing.T) {
	_, out := runScript(t, "crack 1024\n")
	if !strings.Contains(out, "cracked: candidate 768 of 1024") {
		t.Errorf("crack out = %q", out)
	}
}
