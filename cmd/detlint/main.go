// Command detlint is the multichecker driver for the repository's
// determinism analyzers (internal/detlint). It loads the named packages,
// applies every analyzer (or the -only subset), resolves
// //detlint:allow suppressions, and exits nonzero if any unsuppressed
// finding remains.
//
// Usage:
//
//	go run ./cmd/detlint [-json] [-tests] [-only a,b] [-list] ./...
//
// Text output is one finding per line in file:line:col form. -json emits
// a machine-readable report (schema below) so tooling — and the bench
// harness — can diff finding counts per PR:
//
//	{
//	  "version": 1,
//	  "packages": 17,
//	  "counts": {"maporder": 0, ...},        // unsuppressed, per analyzer
//	  "suppressed_counts": {"globalmut": 3},
//	  "findings": [...],                      // unsuppressed only
//	  "suppressed": [...]                     // each with its reason
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/detlint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report")
		tests    = flag.Bool("tests", false, "also analyze in-package _test.go files")
		only     = flag.String("only", "", "comma-separated subset of analyzers to run")
		list     = flag.Bool("list", false, "list analyzers and exit")
		showSupp = flag.Bool("show-suppressed", false, "also print suppressed findings (text mode)")
	)
	flag.Parse()

	analyzers := detlint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*detlint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := detlint.NewLoader()
	pkgs, err := loader.Load(patterns, *tests)
	if err != nil {
		fatalf("%v", err)
	}

	var all []detlint.Finding
	for _, pkg := range pkgs {
		fs, err := detlint.RunPackage(pkg, analyzers)
		if err != nil {
			fatalf("%s: %v", pkg.Path, err)
		}
		all = append(all, fs...)
	}
	relativize(all)

	var open, suppressed []detlint.Finding
	for _, f := range all {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		} else {
			open = append(open, f)
		}
	}

	if *jsonOut {
		emitJSON(len(pkgs), analyzers, open, suppressed)
	} else {
		for _, f := range open {
			fmt.Println(f)
		}
		if *showSupp {
			for _, f := range suppressed {
				fmt.Printf("%s (suppressed: %s)\n", f, f.Reason)
			}
		}
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s), %d suppressed, %d package(s)\n",
			len(open), len(suppressed), len(pkgs))
	}
	if len(open) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites finding paths relative to the working directory so
// reports are stable across checkouts (and diffable in CI artifacts).
func relativize(fs []detlint.Finding) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range fs {
		if rel, err := filepath.Rel(wd, fs[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].File = rel
		}
	}
}

type report struct {
	Version          int               `json:"version"`
	Packages         int               `json:"packages"`
	Counts           map[string]int    `json:"counts"`
	SuppressedCounts map[string]int    `json:"suppressed_counts"`
	Findings         []detlint.Finding `json:"findings"`
	Suppressed       []detlint.Finding `json:"suppressed"`
}

func emitJSON(pkgs int, analyzers []*detlint.Analyzer, open, suppressed []detlint.Finding) {
	r := report{
		Version:          1,
		Packages:         pkgs,
		Counts:           map[string]int{},
		SuppressedCounts: map[string]int{},
		Findings:         open,
		Suppressed:       suppressed,
	}
	for _, a := range analyzers {
		r.Counts[a.Name] = 0
	}
	for _, f := range open {
		r.Counts[f.Analyzer]++
	}
	for _, f := range suppressed {
		r.SuppressedCounts[f.Analyzer]++
	}
	if r.Findings == nil {
		r.Findings = []detlint.Finding{}
	}
	if r.Suppressed == nil {
		r.Suppressed = []detlint.Finding{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "detlint: "+format+"\n", args...)
	os.Exit(2)
}
