// Codesize prints the Table 3 analogue for this repository:
// implementation code size per component, counting semicolon lines as
// the paper does plus plain source lines (Go elides most semicolons).
package main

import (
	"flag"
	"fmt"

	"repro/internal/bench"
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	t := bench.Tab3(*root)
	fmt.Print(t.Format())
}
