package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const demoBuild = `# tiny C-like build
file main.c int main;
file util.c int util;

task cc-main upper main.o <- main.c
task cc-util upper util.o <- util.c
task link concat a.out <- main.o util.o
`

func TestParseBuildFile(t *testing.T) {
	g, sources, err := parseBuildFile(demoBuild)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks()) != 3 {
		t.Fatalf("parsed %d tasks, want 3", len(g.Tasks()))
	}
	if string(sources["main.c"]) != "int main;\n" {
		t.Fatalf("main.c = %q", sources["main.c"])
	}
	link, ok := g.Task("link")
	if !ok || link.Action != "concat" || len(link.Inputs) != 2 {
		t.Fatalf("link = %+v", link)
	}
}

func TestParseBuildFileErrors(t *testing.T) {
	for _, bad := range []string{
		"frob x y\n",
		"file\n",
		"file a.c x\nfile a.c y\n",
		"task t1\n",
		"task t1 gen out in-without-arrow\n",
	} {
		if _, _, err := parseBuildFile(bad); err == nil {
			t.Fatalf("parseBuildFile(%q) accepted", bad)
		}
	}
}

func TestParseTaskArgs(t *testing.T) {
	task, err := parseTask([]string{"t", "gen:hello,world", "out.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if task.Action != "gen" || len(task.Args) != 2 || task.Args[1] != "world" {
		t.Fatalf("task = %+v", task)
	}
}

// Cold run executes everything; a second run over the same -store
// directory is pure cache hits with the identical tree digest.
func TestColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	bf := filepath.Join(dir, "build.dmk")
	if err := os.WriteFile(bf, []byte(demoBuild), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "cache")

	runOnce := func() string {
		var out, errOut strings.Builder
		if code := run([]string{"-f", bf, "-store", store}, &out, &errOut); code != 0 {
			t.Fatalf("run failed (%d): %s", code, errOut.String())
		}
		return out.String()
	}

	cold := runOnce()
	if !strings.Contains(cold, "EXEC cc-main") || !strings.Contains(cold, "3 executed, 0 cache hits") {
		t.Fatalf("cold output:\n%s", cold)
	}
	warm := runOnce()
	if !strings.Contains(warm, "HIT  link") || !strings.Contains(warm, "0 executed, 3 cache hits") {
		t.Fatalf("warm output:\n%s", warm)
	}
	tree := regexp.MustCompile(`tree \S+ checksum \S+`)
	if tree.FindString(cold) != tree.FindString(warm) {
		t.Fatalf("warm digest differs from cold:\ncold: %s\nwarm: %s",
			tree.FindString(cold), tree.FindString(warm))
	}
}

func TestBuildErrorIsReported(t *testing.T) {
	dir := t.TempDir()
	bf := filepath.Join(dir, "cycle.dmk")
	cycle := "task a concat x <- y\ntask b concat y <- x\n"
	if err := os.WriteFile(bf, []byte(cycle), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-f", bf}, &out, &errOut); code == 0 {
		t.Fatal("cyclic build succeeded")
	}
	if !strings.Contains(errOut.String(), "cycle") {
		t.Fatalf("stderr = %q, want cycle report", errOut.String())
	}
}
