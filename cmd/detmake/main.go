// Detmake is the deterministic parallel build executor over a
// content-addressed build cache: it parses a small declarative build
// file, runs every task hermetically inside the emulated kernel
// (private file-system image per task, outputs merged at quiescent
// points), and keys each result by the content hash of (action, input
// tree) into the checkpoint store. A warm store makes the second run
// of an unchanged build pure cache fetches — bit-identical to cold
// execution by the determinism guarantee, and verified so on every
// fetch.
//
// Usage:
//
//	go run ./cmd/detmake -f build.dmk -store /tmp/dmk-cache -j 8
//
// Build file format, one directive per line ('#' comments):
//
//	file <path> <text...>                      a source file (text + newline)
//	task <id> <action>[:<arg>,...] <out[,out]> [<- <in> ...]
//
// Actions are the built-in detmake set (gen, concat, upper, derive,
// chunk). With -store the cache persists across runs: rerun the same
// command and every task reports HIT. Without it an in-memory store
// still deduplicates identical tasks within the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/castore"
	"repro/internal/detmake"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("detmake", flag.ContinueOnError)
	fl.SetOutput(stderr)
	var (
		buildFile = fl.String("f", "build.dmk", "build file")
		storeDir  = fl.String("store", "", "build-cache directory (empty: in-memory, per-run)")
		jobs      = fl.Int("j", detmake.DefaultJobs, "parallel task slots")
		showOut   = fl.Bool("print", false, "print every output file after the build")
	)
	if err := fl.Parse(args); err != nil {
		return 2
	}

	src, err := os.ReadFile(*buildFile)
	if err != nil {
		fmt.Fprintf(stderr, "detmake: %v\n", err)
		return 1
	}
	graph, sources, err := parseBuildFile(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "detmake: %s: %v\n", *buildFile, err)
		return 1
	}

	cfg := detmake.Config{Graph: graph, Sources: sources, Jobs: *jobs}
	if *storeDir != "" {
		store, err := castore.OpenDirStore(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "detmake: %v\n", err)
			return 1
		}
		idx, err := detmake.OpenDirIndex(filepath.Join(*storeDir, "actions"))
		if err != nil {
			fmt.Fprintf(stderr, "detmake: %v\n", err)
			return 1
		}
		cfg.Store, cfg.Index = store, idx
	} else {
		cfg.Store, cfg.Index = castore.NewMemStore(), detmake.NewMemIndex()
	}

	start := time.Now()
	res, err := detmake.Build(cfg)
	wall := time.Since(start)
	for _, tr := range res.Tasks {
		switch {
		case tr.CacheHit:
			fmt.Fprintf(stdout, "HIT  %s\n", tr.ID)
		case tr.Fallback != "":
			fmt.Fprintf(stdout, "EXEC %s (cache rejected: %s)\n", tr.ID, tr.Fallback)
		default:
			fmt.Fprintf(stdout, "EXEC %s\n", tr.ID)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "detmake: %v\n", err)
		return 1
	}
	st := res.Stats
	fmt.Fprintf(stdout, "%d tasks in %d waves: %d executed, %d cache hits (%d fallbacks)\n",
		st.Tasks, st.Waves, st.Executed, st.CacheHits, st.Fallbacks)
	fmt.Fprintf(stdout, "fetched %d B, stored %d B, vt %d, wall %s\n",
		st.Fetched, st.Stored, res.VT, wall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "tree %s checksum %016x\n", res.TreeDigest, res.Checksum)
	if *showOut {
		for _, t := range graph.Tasks() {
			for _, p := range t.Outputs {
				fmt.Fprintf(stdout, "-- %s --\n%s", p, res.Outputs[p])
			}
		}
	}
	return 0
}

// parseBuildFile reads the declarative build format described in the
// package comment.
func parseBuildFile(src string) (*detmake.Graph, map[string][]byte, error) {
	sources := make(map[string][]byte)
	var tasks []*detmake.Task
	for i, line := range strings.Split(src, "\n") {
		lineNo := i + 1
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "file":
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("line %d: file needs a path", lineNo)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "file"))
			rest = strings.TrimSpace(strings.TrimPrefix(rest, fields[1]))
			if _, dup := sources[fields[1]]; dup {
				return nil, nil, fmt.Errorf("line %d: duplicate file %s", lineNo, fields[1])
			}
			sources[fields[1]] = []byte(rest + "\n")
		case "task":
			t, err := parseTask(fields[1:])
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			tasks = append(tasks, t)
		default:
			return nil, nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	g, err := detmake.NewGraph(tasks)
	if err != nil {
		return nil, nil, err
	}
	return g, sources, nil
}

// parseTask decodes "ID ACTION[:arg,...] OUT[,OUT] [<- IN...]".
func parseTask(fields []string) (*detmake.Task, error) {
	if len(fields) < 3 {
		return nil, fmt.Errorf("task needs: id action out[,out] [<- in...]")
	}
	t := &detmake.Task{ID: fields[0]}
	action := fields[1]
	if colon := strings.IndexByte(action, ':'); colon >= 0 {
		t.Args = strings.Split(action[colon+1:], ",")
		action = action[:colon]
	}
	t.Action = action
	t.Outputs = strings.Split(fields[2], ",")
	rest := fields[3:]
	if len(rest) > 0 {
		if rest[0] != "<-" {
			return nil, fmt.Errorf("task %s: expected <- before inputs, got %q", t.ID, rest[0])
		}
		t.Inputs = rest[1:]
	}
	return t, nil
}
