// Detserved is the deterministic session-serving daemon: a long-lived
// HTTP front end over internal/serve, multiplexing many tenants'
// sessions across a bounded worker pool with checkpoint-backed eviction
// into an on-disk content-addressed store.
//
// Usage:
//
//	go run ./cmd/detserved -addr :8080 -store /var/lib/detserved \
//	    -workers 4 -resident 32 -slice 2
//
// Endpoints (JSON over POST unless noted):
//
//	/v1/open  {"tenant","program","arg"}  -> {"id"}
//	/v1/run   {"tenant","id"}             -> {"status","ret","vt","insns"}
//	/v1/evict {"tenant","id"}             -> {}
//	/v1/close {"tenant","id"}             -> {}
//	/v1/gc    {}                          -> collection stats
//	/v1/stats (GET)                       -> serve.Metrics
//
// Programs are the built-in stripe workloads (stripe-small, stripe,
// stripe-large); arg seeds the computation, so a request's result is a
// pure function of (program, arg) — re-POST /v1/run all you like.
//
// Unlike internal/serve, this package may read the wall clock (see
// docs/determinism-rules.md): it lives at the edge, where wall time is
// only billed against tenant budgets, never fed into a computation.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("store", "", "checkpoint store directory (required)")
		workers  = flag.Int("workers", 4, "worker pool size")
		resident = flag.Int("resident", 32, "max sessions holding an in-memory image (0 = unbounded)")
		slice    = flag.Int("slice", 1, "phase budget per timeslice")
		maxOpen  = flag.Int("max-open", 0, "default per-tenant open-session cap (0 = unlimited)")
		maxPages = flag.Int("max-pages", 0, "default per-tenant resting-image page cap")
		maxVT    = flag.Int64("max-vt", 0, "default per-tenant virtual-time budget")
		maxWall  = flag.Duration("max-wall", 0, "default per-tenant wall-clock budget")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "detserved: -store is required")
		os.Exit(2)
	}
	store, err := repro.OpenDirStore(*storeDir)
	if err != nil {
		log.Fatalf("detserved: %v", err)
	}
	srv, err := newServer(store, serve.Config{
		Workers:  *workers,
		Resident: *resident,
		Slice:    *slice,
		DefaultCaps: serve.TenantCaps{
			MaxOpen:   *maxOpen,
			MaxPages:  *maxPages,
			MaxVT:     *maxVT,
			MaxWallNS: int64(*maxWall),
		},
		Clock: func() int64 { return time.Now().UnixNano() },
	})
	if err != nil {
		log.Fatalf("detserved: %v", err)
	}
	defer srv.Shutdown()
	log.Printf("detserved: serving on %s (store %s, %d workers, resident cap %d)",
		*addr, *storeDir, *workers, *resident)
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

// server ties the serve fabric to its HTTP surface.
type server struct {
	s *serve.Server
}

// newServer builds the fabric with the built-in program catalog. The
// machine shape is fixed for the server's lifetime: a resume must match
// the shape its checkpoint was captured under.
func newServer(store repro.ChunkStore, cfg serve.Config) (*server, error) {
	cfg.Store = store
	cfg.SessionOpts = []repro.SessionOption{
		repro.WithMachine(repro.MachineConfig{CPUsPerNode: 4, MergeWorkers: 1}),
	}
	s, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	s.Register("stripe-small", serve.StripeProgram(2, 4, 128))
	s.Register("stripe", serve.StripeProgram(4, 8, 1024))
	s.Register("stripe-large", serve.StripeProgram(8, 16, 8192))
	return &server{s: s}, nil
}

func (h *server) Shutdown() { h.s.Shutdown() }

func (h *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/open", h.open)
	mux.HandleFunc("/v1/run", h.run)
	mux.HandleFunc("/v1/evict", h.evict)
	mux.HandleFunc("/v1/close", h.close)
	mux.HandleFunc("/v1/gc", h.gc)
	mux.HandleFunc("/v1/stats", h.stats)
	return mux
}

// sessionReq addresses one tenant's session.
type sessionReq struct {
	Tenant string          `json:"tenant"`
	ID     serve.SessionID `json:"id"`
}

// runReply is the JSON form of a completed session's RunResult.
type runReply struct {
	Status string `json:"status"`
	Ret    uint64 `json:"ret"`
	VT     int64  `json:"vt"`
	Insns  int64  `json:"insns"`
}

func (h *server) open(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant  string `json:"tenant"`
		Program string `json:"program"`
		Arg     uint64 `json:"arg"`
	}
	if !decode(w, r, &req) {
		return
	}
	id, err := h.s.Open(req.Tenant, req.Program, req.Arg)
	if err != nil {
		fail(w, err)
		return
	}
	reply(w, map[string]serve.SessionID{"id": id})
}

func (h *server) run(w http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decode(w, r, &req) {
		return
	}
	res, err := h.s.Run(req.Tenant, req.ID)
	if err != nil {
		fail(w, err)
		return
	}
	reply(w, runReply{Status: fmt.Sprint(res.Status), Ret: res.Ret, VT: res.VT, Insns: res.Insns})
}

func (h *server) evict(w http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decode(w, r, &req) {
		return
	}
	if err := h.s.Evict(req.Tenant, req.ID); err != nil {
		fail(w, err)
		return
	}
	reply(w, struct{}{})
}

func (h *server) close(w http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decode(w, r, &req) {
		return
	}
	if err := h.s.CloseSession(req.Tenant, req.ID); err != nil {
		fail(w, err)
		return
	}
	reply(w, struct{}{})
}

func (h *server) gc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	st, err := h.s.GC()
	if err != nil {
		fail(w, err)
		return
	}
	reply(w, st)
}

func (h *server) stats(w http.ResponseWriter, r *http.Request) {
	reply(w, h.s.Stats())
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// fail maps fabric errors onto HTTP statuses: cap refusals are 429
// (come back with budget), unknown names 404, shutdown 503.
func fail(w http.ResponseWriter, err error) {
	var ce *serve.CapError
	code := http.StatusNotFound
	switch {
	case errors.As(err, &ce):
		code = http.StatusTooManyRequests
	case errors.Is(err, serve.ErrClosed):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}
