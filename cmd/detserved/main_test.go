package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/serve"
)

// startTestServer stands up the full HTTP surface over a MemStore.
func startTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	h, err := newServer(repro.NewMemStore(), serve.Config{Workers: 2, Resident: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h.mux())
	t.Cleanup(func() { ts.Close(); h.Shutdown() })
	return ts, h
}

// post sends body as JSON and decodes the response into out, asserting
// the expected status code.
func post(t *testing.T, ts *httptest.Server, path string, body, out any, wantCode int) string {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d (want %d): %s", path, resp.StatusCode, wantCode, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("POST %s: bad reply %q: %v", path, buf.String(), err)
		}
	}
	return buf.String()
}

func TestServedEndToEnd(t *testing.T) {
	ts, _ := startTestServer(t)

	// Open + run a few sessions; identical (program, arg) requests from
	// different tenants must produce identical results.
	runOne := func(tenant string, arg uint64) runReply {
		var opened struct {
			ID serve.SessionID `json:"id"`
		}
		post(t, ts, "/v1/open", map[string]any{"tenant": tenant, "program": "stripe-small", "arg": arg}, &opened, 200)
		var res runReply
		post(t, ts, "/v1/run", map[string]any{"tenant": tenant, "id": opened.ID}, &res, 200)
		if res.Status != "halted" || res.VT == 0 {
			t.Fatalf("run %s/%d: %+v", tenant, arg, res)
		}
		// Evict then close: the session's state survives in the store.
		post(t, ts, "/v1/evict", map[string]any{"tenant": tenant, "id": opened.ID}, nil, 200)
		post(t, ts, "/v1/close", map[string]any{"tenant": tenant, "id": opened.ID}, nil, 200)
		return res
	}
	a := runOne("alice", 7)
	b := runOne("bob", 7)
	if a != b {
		t.Fatalf("same program+arg, different results: %+v vs %+v", a, b)
	}
	if c := runOne("alice", 8); c == a {
		t.Fatal("different args produced identical results")
	}

	var gc repro.CollectStats
	post(t, ts, "/v1/gc", struct{}{}, &gc, 200)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Opened != 3 || m.Completed != 3 || m.Closed != 3 || m.BitEqFail != 0 {
		t.Fatalf("stats: %+v", m)
	}
}

func TestServedErrors(t *testing.T) {
	ts, h := startTestServer(t)

	// Unknown program and unknown session are 404s.
	post(t, ts, "/v1/open", map[string]any{"tenant": "t", "program": "nope"}, nil, 404)
	post(t, ts, "/v1/run", map[string]any{"tenant": "t", "id": "t/99"}, nil, 404)

	// A cap refusal is 429.
	h.s.SetCaps("capped", serve.TenantCaps{MaxOpen: 1})
	post(t, ts, "/v1/open", map[string]any{"tenant": "capped", "program": "stripe-small"}, nil, 200)
	post(t, ts, "/v1/open", map[string]any{"tenant": "capped", "program": "stripe-small"}, nil, 429)

	// Malformed JSON is 400; GET on a POST endpoint is 405.
	resp, err := http.Post(ts.URL+"/v1/open", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/v1/run"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET run: status %d", resp.StatusCode)
	}

	// Shut down: further opens are 503.
	h.Shutdown()
	post(t, ts, "/v1/open", map[string]any{"tenant": "t", "program": "stripe-small"}, nil, 503)
}
