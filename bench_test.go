// The external test package breaks the cycle the serve fabric would
// otherwise close: bench imports serve, and serve imports repro.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dsched"
	"repro/internal/kernel"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Experiment benchmarks: one testing.B target per table/figure of the
// paper's evaluation, running the same harness as cmd/detbench in quick
// mode. `go test -bench=Fig7` etc.; full-size runs via `go run
// ./cmd/detbench`.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := bench.Run(id, ".", bench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkFig4(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkMergeTable(b *testing.B)   { benchExperiment(b, "merge") }
func BenchmarkFig7(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkQuantum(b *testing.B)      { benchExperiment(b, "quantum") }
func BenchmarkKVTable(b *testing.B)      { benchExperiment(b, "kv") }
func BenchmarkClusterTable(b *testing.B) { benchExperiment(b, "cluster") }
func BenchmarkCkptTable(b *testing.B)    { benchExperiment(b, "ckpt") }
func BenchmarkServeTable(b *testing.B)   { benchExperiment(b, "serve") }
func BenchmarkMakeTable(b *testing.B)    { benchExperiment(b, "make") }
func BenchmarkTab3(b *testing.B)         { benchExperiment(b, "tab3") }

// Per-workload micro-benchmarks: each benchmark kernel on Determinator
// and on the nondeterministic baseline, at a fixed small size, so
// `go test -bench=. -benchmem` exposes the isolation overhead directly.

const (
	microThreads = 4
	microMD5     = 1 << 11
	microMatmult = 64
	microQsort   = 1 << 13
	microBS      = 1 << 11
	microFFT     = 1 << 11
	microLU      = 64
)

func benchDet(b *testing.B, name string, size int) {
	b.Helper()
	spec, err := workload.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := core.Run(core.Options{
			Kernel:     kernel.Config{CPUsPerNode: microThreads},
			SharedSize: spec.SharedBytes(size),
		}, func(rt *core.RT) uint64 {
			return spec.Det(rt, microThreads, size)
		})
		if res.Status != kernel.StatusHalted {
			b.Fatalf("%s: %v %v", name, res.Status, res.Err)
		}
	}
}

func benchBase(b *testing.B, name string, size int) {
	b.Helper()
	fn := baseline.Baselines()[name]
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += fn(microThreads, size)
	}
	_ = sink
}

func BenchmarkDetMD5(b *testing.B)           { benchDet(b, "md5", microMD5) }
func BenchmarkBaseMD5(b *testing.B)          { benchBase(b, "md5", microMD5) }
func BenchmarkDetMatmult(b *testing.B)       { benchDet(b, "matmult", microMatmult) }
func BenchmarkBaseMatmult(b *testing.B)      { benchBase(b, "matmult", microMatmult) }
func BenchmarkDetQsort(b *testing.B)         { benchDet(b, "qsort", microQsort) }
func BenchmarkBaseQsort(b *testing.B)        { benchBase(b, "qsort", microQsort) }
func BenchmarkDetBlackscholes(b *testing.B)  { benchDet(b, "blackscholes", microBS) }
func BenchmarkBaseBlackscholes(b *testing.B) { benchBase(b, "blackscholes", microBS) }
func BenchmarkDetFFT(b *testing.B)           { benchDet(b, "fft", microFFT) }
func BenchmarkBaseFFT(b *testing.B)          { benchBase(b, "fft", microFFT) }
func BenchmarkDetLUCont(b *testing.B)        { benchDet(b, "lu_cont", microLU) }
func BenchmarkDetLUNoncont(b *testing.B)     { benchDet(b, "lu_noncont", microLU) }
func BenchmarkBaseLU(b *testing.B)           { benchBase(b, "lu_cont", microLU) }

// Substrate micro-benchmarks: the primitive costs behind every number
// above.

func BenchmarkForkJoinThread(b *testing.B) {
	res := core.Run(core.Options{}, func(rt *core.RT) uint64 {
		x := rt.Alloc(4, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.Fork(0, func(t *core.Thread) uint64 {
				t.Env().WriteU32(x, uint32(i))
				return 0
			}); err != nil {
				panic(err)
			}
			if _, err := rt.Join(0); err != nil {
				panic(err)
			}
		}
		return 0
	})
	if res.Status != kernel.StatusHalted {
		b.Fatalf("%v: %v", res.Status, res.Err)
	}
}

// BenchmarkMerge pits the serial and parallel merge engines against each
// other on a dirty-heavy 4-thread join: four children each dirty their
// entire quarter of a 64 MiB region, the parent touches every page so the
// merges take the byte-compare slow path, and all four are joined in
// thread-id order. The sub-benchmarks — serial word kernel, the per-byte
// reference kernel, and the parallel engine — do byte-identical work (the
// vm property tests prove it); the delta is pure engine wall-clock.
func BenchmarkMerge(b *testing.B) {
	const (
		mergePages   = 16 * 1024 // 64 MiB
		mergeThreads = 4
	)
	workers := runtime.GOMAXPROCS(0)
	for _, eng := range []struct {
		name string
		cfg  vm.MergeConfig
	}{
		{"serial", vm.MergeConfig{}},
		{"byteKernel", vm.MergeConfig{ByteKernel: true}},
		{fmt.Sprintf("parallel%d", workers), vm.MergeConfig{Workers: workers}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			w := bench.BuildMergeWorkload(mergePages, mergeThreads, 1.0, true)
			defer w.Free()
			b.ResetTimer()
			var stats vm.MergeStats
			for i := 0; i < b.N; i++ {
				stats, _ = w.JoinAll(eng.cfg)
			}
			b.ReportMetric(float64(stats.PagesCompared), "pages-compared/op")
			b.ReportMetric(float64(stats.PtesScanned), "ptes-scanned/op")
			b.SetBytes(int64(stats.PagesCompared) * vm.PageSize)
		})
	}
}

// BenchmarkDschedRound drives the deterministic scheduler's round engine
// against the pre-engine loop (from-scratch snapshot per runnable thread
// per round, no epoch skipping) on a blocked-heavy 8-thread workload:
// threads serialize on one mutex and the holder scans shared memory for
// many read-only quanta, so at any instant one thread is runnable and
// seven sit blocked. Checksums, round counts and schedules are identical
// between the two engines (see the dsched invariance tests); the metric
// that differs is rounds per second of host time.
func BenchmarkDschedRound(b *testing.B) {
	const (
		dsThreads = 8
		dsPages   = 256 // 1 MiB scan per thread: ~65 quanta each at q=2000
		dsQuantum = 2000
		dsShared  = uint64(64 << 20)
	)
	// run times the workload body only — machine construction and
	// shared-region mapping stay outside the window. The body's own
	// setup (256 table-init writes) is negligible against 520 rounds
	// and is paid identically by both engines.
	run := func(cfg dsched.Config) (uint64, dsched.Stats, time.Duration) {
		var value uint64
		var stats dsched.Stats
		var dur time.Duration
		res := core.Run(core.Options{
			Kernel:     kernel.Config{CPUsPerNode: dsThreads},
			SharedSize: dsShared,
		}, func(rt *core.RT) uint64 {
			start := time.Now()
			value, stats = workload.LockScan(rt, dsThreads, dsPages, cfg)
			dur = time.Since(start)
			return value
		})
		if res.Status != kernel.StatusHalted {
			b.Fatalf("%v: %v", res.Status, res.Err)
		}
		return value, stats, dur
	}
	for _, eng := range []struct {
		name string
		cfg  dsched.Config
	}{
		{"legacy", dsched.Config{Quantum: dsQuantum, FullResync: true}},
		{"engine", dsched.Config{Quantum: dsQuantum}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			var rounds, skipped int64
			var sig uint64
			var sched time.Duration
			for i := 0; i < b.N; i++ {
				v, st, dur := run(eng.cfg)
				sig, rounds, skipped = v, st.Rounds, st.SyncSkipped
				sched += dur
			}
			b.ReportMetric(float64(rounds)*float64(b.N)/sched.Seconds(), "rounds/sec")
			b.ReportMetric(float64(rounds), "rounds/op")
			b.ReportMetric(float64(skipped), "skipped/op")
			_ = sig
		})
	}
}

func BenchmarkMergeDirtyPages(b *testing.B) {
	for _, pages := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("dirty=%d", pages), func(b *testing.B) {
			res := core.Run(core.Options{}, func(rt *core.RT) uint64 {
				buf := make([]uint32, pages*1024)
				addr := rt.AllocPages(pages)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := rt.Fork(0, func(t *core.Thread) uint64 {
						t.Env().WriteU32s(addr, buf)
						return 0
					}); err != nil {
						panic(err)
					}
					if _, err := rt.Join(0); err != nil {
						panic(err)
					}
				}
				return 0
			})
			if res.Status != kernel.StatusHalted {
				b.Fatalf("%v: %v", res.Status, res.Err)
			}
		})
	}
}
