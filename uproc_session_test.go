package repro

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// uprocTestRegistry registers "stamp": a child that writes its argument
// to the console and records it in a file, so its effects reach the
// root's replica only through reconciliation at wait.
func uprocTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("stamp", func(p *Proc) int {
		name := p.Args()[1]
		p.ConsoleWrite([]byte("stamp " + name + "\n"))
		if err := p.FS().WriteFile("/out-"+name, []byte("<"+name+">")); err != nil {
			return 1
		}
		return len(name)
	})
	return reg
}

// uprocTestProgram builds a three-phase process tree: phase 0 forks and
// collects two children, phase 1 forks a child whose argument is read
// back from a file phase 0's child wrote (cross-phase state flows through
// the restored file system, not Go variables), phase 2 summarizes.
func uprocTestProgram(reg *Registry) Program {
	return UprocProgram(reg, []string{"init"}, []UprocPhase{
		func(p *Proc) error {
			p.ConsoleWrite([]byte("phase0\n"))
			for _, name := range []string{"alpha", "beta"} {
				pid, err := p.ForkExec("stamp", name)
				if err != nil {
					return err
				}
				status, _, err := p.Waitpid(pid)
				if err != nil {
					return err
				}
				if status != len(name) {
					return fmt.Errorf("stamp %s exited %d", name, status)
				}
			}
			return nil
		},
		func(p *Proc) error {
			prev, err := p.FS().ReadFile("/out-alpha")
			if err != nil {
				return err
			}
			pid, err := p.ForkExec("stamp", "from"+string(prev[1:6]))
			if err != nil {
				return err
			}
			_, _, err = p.Waitpid(pid)
			return err
		},
		func(p *Proc) error {
			b, err := p.FS().ReadFile("/out-fromalpha")
			if err != nil {
				return err
			}
			p.ConsoleWrite([]byte("final " + string(b) + "\n"))
			return nil
		},
	})
}

// TestUprocProgramCheckpointEverywhere runs a process tree through the
// Session's phased machinery: for every barrier, run to a checkpoint,
// ship the image through bytes AND through a content-addressed store,
// resume in a fresh session, and require the machine result and the
// concatenated console output to be bit-identical to the uninterrupted
// run's.
func TestUprocProgramCheckpointEverywhere(t *testing.T) {
	reg := uprocTestRegistry()

	var full bytes.Buffer
	res, err := mustSession(t, WithConsole(nil, &full)).RunProgram(uprocTestProgram(reg))
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := keyOf(res, err)
	if full.Len() == 0 {
		t.Fatal("uninterrupted run produced no console output")
	}

	prog := uprocTestProgram(reg)
	for k := 1; k <= prog.Phases; k++ {
		var outA, outB bytes.Buffer
		img, err := mustSession(t, WithConsole(nil, &outA)).RunToCheckpoint(uprocTestProgram(reg), k)
		if err != nil {
			t.Fatalf("barrier %d: RunToCheckpoint: %v", k, err)
		}
		img = roundTripStore(t, roundTripImage(t, img))
		res, err := mustSession(t, WithConsole(nil, &outB)).Resume(img, uprocTestProgram(reg))
		if got := keyOf(res, err); got != want {
			t.Fatalf("barrier %d: resumed result %+v, uninterrupted %+v", k, got, want)
		}
		joined := append(append([]byte(nil), outA.Bytes()...), outB.Bytes()...)
		if !bytes.Equal(joined, full.Bytes()) {
			t.Fatalf("barrier %d: console output %q + %q != uninterrupted %q",
				k, outA.Bytes(), outB.Bytes(), full.Bytes())
		}
	}
}

// TestUprocProgramSaveToResumeFrom checkpoints a process tree, persists
// it through SaveTo on a DirStore, and resumes from the manifest in a
// fresh session — the uproc version of the store-backed lifecycle.
func TestUprocProgramSaveToResumeFrom(t *testing.T) {
	reg := uprocTestRegistry()

	var full bytes.Buffer
	res, err := mustSession(t, WithConsole(nil, &full)).RunProgram(uprocTestProgram(reg))
	if err != nil {
		t.Fatal(err)
	}
	want := keyOf(res, err)

	store, err := OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var outA bytes.Buffer
	sA := mustSession(t, WithConsole(nil, &outA))
	if _, err := sA.RunToCheckpoint(uprocTestProgram(reg), 2); err != nil {
		t.Fatal(err)
	}
	m, err := sA.SaveTo(store)
	if err != nil {
		t.Fatalf("SaveTo: %v", err)
	}

	m2, err := LoadManifest(store, m.Key())
	if err != nil {
		t.Fatal(err)
	}
	var outB bytes.Buffer
	sB := mustSession(t, WithConsole(nil, &outB))
	res, err = sB.ResumeFrom(store, m2, uprocTestProgram(reg))
	if got := keyOf(res, err); got != want {
		t.Fatalf("resumed result %+v, uninterrupted %+v", got, want)
	}
	joined := append(append([]byte(nil), outA.Bytes()...), outB.Bytes()...)
	if !bytes.Equal(joined, full.Bytes()) {
		t.Fatalf("console output %q + %q != uninterrupted %q", outA.Bytes(), outB.Bytes(), full.Bytes())
	}
}

// TestUprocCheckpointRejectsUncollectedChildren: a phase that returns
// with a forked-but-unwaited child cannot reach a checkpoint barrier —
// the child's Go-side closure cannot cross an image — and the failure is
// a typed *UprocStateError, not a panic.
func TestUprocCheckpointRejectsUncollectedChildren(t *testing.T) {
	reg := uprocTestRegistry()
	prog := UprocProgram(reg, []string{"init"}, []UprocPhase{
		func(p *Proc) error {
			_, err := p.ForkExec("stamp", "orphan")
			return err // returns with the child uncollected
		},
	})
	_, err := mustSession(t).RunToCheckpoint(prog, 1)
	var se *UprocStateError
	if !errors.As(err, &se) {
		t.Fatalf("RunToCheckpoint with uncollected child: %v, want *UprocStateError", err)
	}
}

// TestUprocResumeRejectsForeignImage: resuming a UprocProgram from an
// image whose uproc section is missing fails typed instead of attaching
// to memory that holds no file system.
func TestUprocResumeRejectsForeignImage(t *testing.T) {
	reg := uprocTestRegistry()
	img, err := mustSession(t).RunToCheckpoint(uprocTestProgram(reg), 1)
	if err != nil {
		t.Fatal(err)
	}
	img = roundTripImage(t, img)
	delete(img.User, "uproc")
	_, err = mustSession(t).Resume(img, uprocTestProgram(reg))
	var se *UprocStateError
	if !errors.As(err, &se) {
		t.Fatalf("resume without uproc section: %v, want *UprocStateError", err)
	}
}
