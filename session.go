package repro

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/dsched"
	"repro/internal/imgenc"
	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/vm"
)

// A Session is the library's coherent entry point: one builder that
// composes everything the historical free functions configured
// separately — the machine (kernel.Config), the runtime (shared-region
// size, flat vs sharded-tree collection), the deterministic scheduler's
// configuration, console I/O, and trace record/replay — and the home of
// deterministic checkpoint/restore.
//
// A Session does not own a running machine; it is a validated
// configuration plus the run entry points. Each Run* call builds a fresh
// machine, which is what makes "resume in a fresh process" and "run the
// same program twice" the same operation.
//
// # Checkpoint/restore
//
// Programs that want mid-run persistence are written phased (Program):
// an explicit sequence of barrier-delimited phases, each of which forks,
// joins and barriers as it pleases but returns with every thread
// collected. At any phase barrier the Session can capture an Image — a
// versioned serialization of the entire space tree (memory, snapshots,
// COW sharing, dirty tracking), every space's virtual time, instruction
// and traffic counters, the device cursors, the runtime's allocator and
// placement state, the scheduler state the program stashes, and (when
// recording) the trace log so far. Resuming the Image in a fresh Session
// — or a fresh process — continues the run bit-identically: final
// checksums, conflict reports and virtual times equal the uninterrupted
// run's. Checkpointing is itself a pure observation: a run that captures
// images is bit-identical to one that does not.
//
// # Lifecycle
//
// A Session moves through an explicit lifecycle:
//
//		Idle ──Bind──▶ Quiescent ──Step──▶ Running ──▶ Quiescent
//		                  │   ▲                           │
//		            Suspend   └─────────Step──────────────┘
//		                  ▼
//		               Suspended ──Close──▶ Closed
//
//	 - Idle: no program bound, no pending checkpoint; every entry point
//	   is available.
//	 - Running: an entry point is in flight. Any lifecycle call made
//	   concurrently fails immediately with *StateError instead of
//	   queueing behind the run (a SaveTo mid-run, a double Resume).
//	 - Quiescent: the session rests at a phase barrier holding a
//	   captured in-memory Image; Step continues it, Suspend evicts it to
//	   a store, SaveTo persists it without evicting.
//	 - Suspended: the checkpoint lives only in a BlobStore (as a chained
//	   Manifest); the session holds no image bytes. Step transparently
//	   resumes from the store.
//	 - Closed: terminal; everything but State and Close fails with
//	   *StateError.
//
// The stepped form (Bind/Step/Suspend) is what a multi-tenant server
// drives (internal/serve): sessions run one timeslice at a time, yield
// at quiescence points, and are evicted to a shared store while idle.
// The historical one-shot entry points (Run, RunProgram,
// RunToCheckpoint, Resume, SaveTo, ResumeFrom) remain as thin wrappers
// over the same runner and now enforce the lifecycle with typed errors
// instead of blocking or silently doing the wrong thing.
type Session struct {
	cfg SessionConfig

	// mu serializes the Run*/Step entry points and guards the per-run
	// fields below: a Session is reusable run after run, but one run at
	// a time — concurrent runs would cross-wire trace splicing and
	// checkpoint collection. Lifecycle entry points TryLock it: a call
	// arriving while a run is in flight gets *StateError{StateRunning}
	// rather than blocking. Concurrency belongs inside a run (the
	// machine), not across runs of one Session; use separate Sessions to
	// run in parallel.
	mu sync.Mutex

	// state is the session's resting lifecycle position. StateRunning is
	// never stored: it is implied by mu being held by an entry point.
	state SessionState

	// prog is the program bound by Bind/BindSuspended for the stepped
	// lifecycle; nil for sessions driven by the one-shot entry points.
	prog *Program

	// current is the checkpoint the session rests at (Quiescent); nil
	// when Idle or Suspended.
	current *Image

	// evictStore is the store Suspend evicted into (or BindSuspended
	// named); Step resumes from it.
	evictStore BlobStore

	// pos is the last known resting phase barrier (-1 for a
	// BindSuspended session that has not loaded its image yet).
	pos int

	// log is the live recording of the most recent Run* call (Record
	// mode); prefix is the already-recorded log a resumed session splices
	// in front of it.
	log    *TraceLog
	prefix *TraceLog

	checkpoints []*Image

	// lastManifest is the most recent manifest this session saved
	// (SaveTo, Suspend) or resumed from (ResumeFrom, BindSuspended); the
	// next save chains onto it.
	lastManifest *Manifest
}

// SessionState is a Session's position in its lifecycle.
type SessionState uint8

const (
	// StateIdle is a fresh or fully completed session: no bound program,
	// no pending checkpoint.
	StateIdle SessionState = iota
	// StateRunning marks an entry point in flight.
	StateRunning
	// StateQuiescent is a session resting at a phase barrier with a
	// captured in-memory checkpoint (or freshly bound, about to run
	// phase 0).
	StateQuiescent
	// StateSuspended is a session whose checkpoint has been evicted to a
	// BlobStore; only the chained manifest is held in memory.
	StateSuspended
	// StateClosed is terminal.
	StateClosed
)

func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateRunning:
		return "Running"
	case StateQuiescent:
		return "Quiescent"
	case StateSuspended:
		return "Suspended"
	case StateClosed:
		return "Closed"
	}
	return fmt.Sprintf("SessionState(%d)", uint8(s))
}

// StateError reports a lifecycle entry point invoked from a state that
// does not permit it: SaveTo or a second Resume while a run is in
// flight (StateRunning), Step without a bound program, Suspend with
// nothing captured, anything but Close on a Closed session.
type StateError struct {
	Op    string       // the entry point that was refused
	State SessionState // the state the session was in
	Msg   string       // optional detail
}

func (e *StateError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("repro: %s in session state %s: %s", e.Op, e.State, e.Msg)
	}
	return fmt.Sprintf("repro: %s not allowed in session state %s", e.Op, e.State)
}

// begin acquires the session for the entry point op, failing with
// *StateError when a run is already in flight (no queueing) or the
// session is not in one of the allowed states. On success the caller
// holds mu and must release it.
func (s *Session) begin(op string, allowed ...SessionState) error {
	if !s.mu.TryLock() {
		return &StateError{Op: op, State: StateRunning}
	}
	for _, a := range allowed {
		if s.state == a {
			return nil
		}
	}
	st := s.state
	s.mu.Unlock()
	return &StateError{Op: op, State: st}
}

// beginUnbound is begin for the one-shot entry points, which
// additionally refuse sessions bound to a stepped program — mixing the
// two forms would corrupt the stepped chain.
func (s *Session) beginUnbound(op string, allowed ...SessionState) error {
	if err := s.begin(op, allowed...); err != nil {
		return err
	}
	if s.prog != nil {
		st := s.state
		s.mu.Unlock()
		return &StateError{Op: op, State: st,
			Msg: "session is bound to a stepped program; drive it with Step/Suspend/Close"}
	}
	return nil
}

// State reports the session's lifecycle state. A session whose mutex is
// held by an in-flight entry point reports StateRunning.
func (s *Session) State() SessionState {
	if !s.mu.TryLock() {
		return StateRunning
	}
	defer s.mu.Unlock()
	return s.state
}

// SessionConfig is the unified configuration a Session is built from.
// The zero value is a valid single-node deterministic machine with
// default cost model, shared-region size and scheduler quantum.
type SessionConfig struct {
	// Machine configures the simulated machine (nodes, CPUs, cost model,
	// merge workers). Machine.Console must be nil when Input/Output are
	// set; the session builds the console.
	Machine MachineConfig
	// SharedSize is the private-workspace shared region size (0 selects
	// the default 64 MiB).
	SharedSize uint64
	// TreeJoin collects threads through the sharded per-node barrier
	// tree instead of the flat collector.
	TreeJoin bool
	// Sched is the deterministic-scheduler configuration used by
	// Session.NewSched.
	Sched SchedConfig
	// Record captures every nondeterministic device input of each run
	// into the log returned by TraceLog.
	Record bool
	// Replay drives the devices from a previously recorded log instead
	// of the configured sources. Mutually exclusive with Record.
	Replay *TraceLog
	// Input / Output are the console streams.
	Input  io.Reader
	Output io.Writer
	// CheckpointAfter lists phase barriers at which RunProgram captures
	// an Image while continuing to run: the value k means "after the
	// first k phases" (1 <= k <= Phases). Captured images are available
	// from Checkpoints.
	CheckpointAfter []int
}

// SessionOption mutates a SessionConfig under construction.
type SessionOption func(*SessionConfig)

// WithMachine sets the machine configuration.
func WithMachine(m MachineConfig) SessionOption {
	return func(c *SessionConfig) { c.Machine = m }
}

// WithSharedSize sets the shared-region size.
func WithSharedSize(n uint64) SessionOption {
	return func(c *SessionConfig) { c.SharedSize = n }
}

// WithTreeJoin selects sharded-tree collection.
func WithTreeJoin(on bool) SessionOption {
	return func(c *SessionConfig) { c.TreeJoin = on }
}

// WithSched sets the deterministic-scheduler configuration template.
func WithSched(cfg SchedConfig) SessionOption {
	return func(c *SessionConfig) { c.Sched = cfg }
}

// WithRecord enables trace recording.
func WithRecord() SessionOption {
	return func(c *SessionConfig) { c.Record = true }
}

// WithReplay replays a recorded trace log.
func WithReplay(l *TraceLog) SessionOption {
	return func(c *SessionConfig) { c.Replay = l }
}

// WithConsole sets the console streams.
func WithConsole(in io.Reader, out io.Writer) SessionOption {
	return func(c *SessionConfig) { c.Input, c.Output = in, out }
}

// WithCheckpointAfter requests an Image capture at the named phase
// barriers (k means after the first k phases) while the run continues.
func WithCheckpointAfter(phases ...int) SessionOption {
	return func(c *SessionConfig) { c.CheckpointAfter = append(c.CheckpointAfter, phases...) }
}

// ConfigError reports an invalid session or facade configuration value.
// The historical free-function constructors replaced such values with
// silent defaults; the Session path rejects them.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("repro: config %s: %s", e.Field, e.Reason) }

// maxSharedSize bounds the shared region: it must fit between SharedBase
// and the top of the 32-bit address space.
const maxSharedSize = uint64(1<<32) - uint64(core.SharedBase)

// NewSession builds a Session from functional options.
func NewSession(opts ...SessionOption) (*Session, error) {
	var cfg SessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	return NewSessionFromConfig(cfg)
}

// NewSessionFromConfig builds a Session from a unified configuration,
// validating it: values the legacy constructors silently replaced with
// defaults are rejected with *ConfigError (zero values still select the
// documented defaults).
func NewSessionFromConfig(cfg SessionConfig) (*Session, error) {
	if cfg.Machine.Nodes < 0 {
		return nil, &ConfigError{Field: "Machine.Nodes", Reason: fmt.Sprintf("negative node count %d", cfg.Machine.Nodes)}
	}
	if cfg.Machine.CPUsPerNode < 0 {
		return nil, &ConfigError{Field: "Machine.CPUsPerNode", Reason: fmt.Sprintf("negative CPU count %d", cfg.Machine.CPUsPerNode)}
	}
	if cfg.Machine.MergeWorkers < 0 {
		return nil, &ConfigError{Field: "Machine.MergeWorkers", Reason: fmt.Sprintf("negative worker count %d", cfg.Machine.MergeWorkers)}
	}
	if cfg.SharedSize > maxSharedSize {
		return nil, &ConfigError{Field: "SharedSize", Reason: fmt.Sprintf("%d exceeds the %d-byte address space above the shared base", cfg.SharedSize, maxSharedSize)}
	}
	if err := cfg.Sched.Validate(); err != nil {
		return nil, err
	}
	if cfg.Record && cfg.Replay != nil {
		return nil, &ConfigError{Field: "Record/Replay", Reason: "mutually exclusive"}
	}
	if cfg.Machine.Console != nil && (cfg.Input != nil || cfg.Output != nil || cfg.Record || cfg.Replay != nil) {
		return nil, &ConfigError{Field: "Machine.Console", Reason: "set Input/Output on the session instead of supplying a console"}
	}
	for _, k := range cfg.CheckpointAfter {
		if k < 1 {
			return nil, &ConfigError{Field: "CheckpointAfter", Reason: fmt.Sprintf("barrier index %d (must be >= 1)", k)}
		}
	}
	return &Session{cfg: cfg}, nil
}

// Config returns the session's validated configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// TraceLog returns the trace recorded by the most recent Run* call
// (Record mode only). For a run resumed from a checkpoint the log is
// complete, not a suffix: the restore re-records the image's prefix
// while fast-forwarding the devices, so the result is bit-identical to
// the log an uninterrupted recording would have produced.
func (s *Session) TraceLog() *TraceLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log
}

// Checkpoints returns the images captured by the most recent RunProgram
// (via CheckpointAfter), in capture order.
func (s *Session) Checkpoints() []*Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoints
}

// NewSched builds a deterministic scheduler from the session's scheduler
// configuration for a runtime created inside one of this session's runs.
func (s *Session) NewSched(rt *RT) (*Sched, error) {
	return dsched.NewChecked(rt, s.cfg.Sched)
}

// deviceConfig materializes the kernel configuration for one run:
// console plumbing, replay, resume-splicing and recording, in that
// wrapping order.
func (s *Session) deviceConfig() MachineConfig {
	cfg := s.cfg.Machine
	input := s.cfg.Input
	if s.cfg.Replay != nil {
		trace.Replay(&cfg, s.cfg.Replay)
		if len(s.cfg.Replay.Input) > 0 {
			input = s.cfg.Replay.ReplayInput()
		}
	}
	if s.prefix != nil {
		// Resuming a recorded run: the first reads of each device replay
		// the recorded prefix (consumed by the restore's fast-forward),
		// then reads fall through to the live sources.
		trace.ReplayPrefix(&cfg, s.prefix)
		input = s.prefix.PrefixReader(input)
	}
	if s.cfg.Record {
		s.log = trace.Record(&cfg)
		if input != nil {
			input = s.log.RecordInput(input)
		}
	}
	if input != nil || s.cfg.Output != nil {
		cfg.Console = kernel.NewConsole(input, s.cfg.Output)
	}
	return cfg
}

// Run executes main as a deterministic parallel program on a fresh
// machine built from the session configuration — the Session form of the
// package-level Run. Lifecycle misuse (a concurrent run in flight, a
// closed or stepped-bound session) surfaces as a StatusNever result
// whose Err is a *StateError.
func (s *Session) Run(main func(rt *RT) uint64) RunResult {
	if err := s.beginUnbound("Run", StateIdle, StateQuiescent); err != nil {
		return RunResult{Status: kernel.StatusNever, Err: err}
	}
	defer s.mu.Unlock()
	m := kernel.New(s.deviceConfig())
	return m.Run(func(env *kernel.Env) {
		rt := core.New(env, s.cfg.SharedSize)
		rt.SetTreeJoin(s.cfg.TreeJoin)
		env.SetRet(main(rt))
	}, 0)
}

// Program is a phased deterministic program: the checkpointable form.
// All cross-phase state must live in the shared region (or in the
// sections Snapshot stashes); Go-side variables do not survive a resume.
type Program struct {
	// Phases is the number of barrier-delimited phases.
	Phases int
	// Layout replays the program's deterministic allocation sequence.
	// It runs before Init on a fresh start and again on every resume —
	// allocation is a pure bump pointer, so re-running it re-derives the
	// addresses Alloc handed out before the checkpoint. It must not read
	// or write memory, fork, or depend on anything but rt.Alloc order.
	Layout func(rt *RT)
	// Init writes the program's initial state. Fresh starts only.
	Init func(rt *RT)
	// Phase runs one barrier-delimited phase: fork/join/barrier freely,
	// but return with every thread collected. An error aborts the run.
	Phase func(rt *RT, phase int) error
	// Result computes the program's result after the last phase.
	Result func(rt *RT) uint64
	// Snapshot, if non-nil, contributes named sections to each captured
	// Image (e.g. a scheduler's exported state). It must not mutate
	// anything: a checkpointing run must stay bit-identical to an
	// uninterrupted one.
	Snapshot func(rt *RT) map[string][]byte
	// Restore, if non-nil, receives the image's sections on resume,
	// after Layout and before the first resumed phase.
	Restore func(rt *RT, sections map[string][]byte) error
}

// ProgramError reports a phased-program structural problem (rather than
// an error from the program's own phases).
type ProgramError struct{ Msg string }

func (e *ProgramError) Error() string { return "repro: program: " + e.Msg }

// RunProgram runs all phases of p on a fresh machine, capturing images
// at the configured CheckpointAfter barriers (available from
// Checkpoints afterwards). It returns the machine result and the first
// program error (phase error, conflict, crash) if any.
//
// Deprecation note: RunProgram is the one-shot form kept for existing
// callers; code that needs to interleave many programs (a server)
// should Bind the program and drive it with Step, which runs the same
// phased runner one timeslice at a time.
func (s *Session) RunProgram(p Program) (RunResult, error) {
	if err := s.beginUnbound("RunProgram", StateIdle, StateQuiescent); err != nil {
		return RunResult{}, err
	}
	defer s.mu.Unlock()
	res, err := s.runPhased(p, nil, 0, false)
	if err == nil {
		s.state = StateIdle
		s.current = nil
	}
	return res, err
}

// RunToCheckpoint runs the first afterPhases phases of p, captures an
// Image at that barrier, and halts the machine. Resume continues from
// the image. The session is left Quiescent at that barrier, so SaveTo
// and Suspend apply to the returned image.
//
// Deprecation note: RunToCheckpoint predates the stepped lifecycle;
// Bind + Step(afterPhases) reaches the same barrier and keeps the
// session steppable afterwards.
func (s *Session) RunToCheckpoint(p Program, afterPhases int) (*Image, error) {
	if afterPhases < 1 || afterPhases > p.Phases {
		return nil, &ProgramError{Msg: fmt.Sprintf("checkpoint barrier %d outside [1,%d]", afterPhases, p.Phases)}
	}
	if err := s.beginUnbound("RunToCheckpoint", StateIdle, StateQuiescent); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	_, err := s.runPhased(p, nil, afterPhases, false)
	if err != nil {
		return nil, err
	}
	n := len(s.checkpoints)
	if n == 0 {
		return nil, &ProgramError{Msg: "run ended before the checkpoint barrier"}
	}
	s.current = s.checkpoints[n-1]
	s.pos = s.current.Phase
	s.state = StateQuiescent
	return s.current, nil
}

// Resume continues p from a previously captured image on a fresh
// machine — typically in a fresh session or process. The session
// configuration must match the one the image was captured under
// (machine shape and cost model are validated against the image). The
// result is bit-identical to the uninterrupted run's: same checksums,
// same conflict report, same virtual time. A second Resume issued while
// one is in flight fails with *StateError instead of queueing.
//
// Deprecation note: Resume runs the image to completion in one call;
// BindSuspended/Step is the incremental, store-backed form the serving
// fabric uses.
func (s *Session) Resume(img *Image, p Program) (RunResult, error) {
	if err := s.beginUnbound("Resume", StateIdle, StateQuiescent); err != nil {
		return RunResult{}, err
	}
	defer s.mu.Unlock()
	res, err := s.runPhased(p, img, 0, false)
	if err == nil {
		s.state = StateIdle
		s.current = nil
	}
	return res, err
}

// runPhased is the shared phased runner; the caller holds s.mu and has
// validated the lifecycle state. img selects resume; stopAfter (when
// > 0) checkpoints at that barrier and halts — unless resultAtStop is
// set and the stop barrier is the final one, in which case the run
// falls through to Result after capturing (the stepped final slice both
// checkpoints and answers).
func (s *Session) runPhased(p Program, img *Image, stopAfter int, resultAtStop bool) (RunResult, error) {
	if p.Phases < 0 || (p.Phases > 0 && p.Phase == nil) {
		return RunResult{}, &ProgramError{Msg: "Phase function missing"}
	}
	wantCk := make(map[int]bool, len(s.cfg.CheckpointAfter))
	for _, k := range s.cfg.CheckpointAfter {
		if k > p.Phases {
			// k >= 1 was validated at session construction; the phase
			// bound is only known here. Silently ignoring the request
			// would report "no checkpoints" as success.
			return RunResult{}, &ProgramError{Msg: fmt.Sprintf(
				"CheckpointAfter barrier %d outside the program's %d phases", k, p.Phases)}
		}
		wantCk[k] = true
	}
	if stopAfter > 0 {
		wantCk[stopAfter] = true
	}
	s.checkpoints = nil
	if img != nil {
		s.prefix = img.TracePrefix
		defer func() { s.prefix = nil }()
	}

	m := kernel.New(s.deviceConfig())
	start := 0
	if img != nil {
		if err := m.Restore(img.Kernel); err != nil {
			return RunResult{}, err
		}
		start = img.Phase
		if start > p.Phases {
			return RunResult{}, &ProgramError{Msg: fmt.Sprintf("image resumes at phase %d of a %d-phase program", start, p.Phases)}
		}
	}

	var progErr error
	var images []*Image
	res := m.Run(func(env *kernel.Env) {
		var rt *RT
		if img != nil {
			var err error
			rt, err = core.Attach(env, img.RT, p.Layout)
			if err != nil {
				progErr = err
				return
			}
			if p.Restore != nil {
				if err := p.Restore(rt, img.User); err != nil {
					progErr = err
					return
				}
			}
		} else {
			rt = core.New(env, s.cfg.SharedSize)
			rt.SetTreeJoin(s.cfg.TreeJoin)
			if p.Layout != nil {
				p.Layout(rt)
			}
			if p.Init != nil {
				p.Init(rt)
			}
		}
		for ph := start; ph < p.Phases; ph++ {
			if err := p.Phase(rt, ph); err != nil {
				progErr = err
				return
			}
			if wantCk[ph+1] {
				im, err := s.capture(env, rt, p, ph+1)
				if err != nil {
					progErr = err
					return
				}
				images = append(images, im)
				if stopAfter == ph+1 && !(resultAtStop && stopAfter == p.Phases) {
					return
				}
			}
		}
		if p.Result != nil {
			env.SetRet(p.Result(rt))
		}
	}, 0)
	s.checkpoints = images
	return res, progErr
}

// capture takes one checkpoint at a phase barrier: the kernel image of
// the whole space tree plus the runtime, program and trace state.
func (s *Session) capture(env *Env, rt *RT, p Program, resumePhase int) (*Image, error) {
	kimg, err := env.Checkpoint(kernel.CheckpointOpts{AllowParked: rt.DelegateRefs()})
	if err != nil {
		return nil, err
	}
	im := &Image{Phase: resumePhase, RT: rt.ExportState(), Kernel: kimg}
	if p.Snapshot != nil {
		im.User = p.Snapshot(rt)
	}
	if s.cfg.Record && s.log != nil {
		im.TracePrefix = s.log.Clone()
	}
	return im, nil
}

// --- stepped lifecycle --------------------------------------------------------

// StepResult describes where one Step left the session.
type StepResult struct {
	// Phase is the barrier the session now rests at.
	Phase int
	// Done reports that every phase has run; Result is valid.
	Done bool
	// Pages is the size of the resting checkpoint's kernel image in
	// whole pages — the session's resident cost while Quiescent.
	Pages int
	// Digest is the content key of the resting checkpoint's canonical
	// serialization. Because images are canonical, two executions of the
	// same slice from the same checkpoint must produce equal digests —
	// the bit-identity a retrying server asserts.
	Digest ChunkKey
	// Result is the machine result of the final slice (Done only).
	Result RunResult
}

// Bind attaches a phased program to the session for stepped execution,
// leaving it Quiescent at phase 0. A bound session is driven with
// Step/Suspend/Close; the one-shot entry points refuse it.
func (s *Session) Bind(p Program) error {
	if err := s.begin("Bind", StateIdle); err != nil {
		return err
	}
	defer s.mu.Unlock()
	if p.Phases < 0 || (p.Phases > 0 && p.Phase == nil) {
		return &ProgramError{Msg: "Phase function missing"}
	}
	s.prog = &p
	s.current = nil
	s.checkpoints = nil
	s.lastManifest = nil
	s.evictStore = nil
	s.pos = 0
	s.state = StateQuiescent
	return nil
}

// BindSuspended attaches a program to a checkpoint that lives in a
// store — the admission path for a session that some other process (or
// a killed worker) left suspended. The session starts Suspended; the
// first Step loads the image and continues it, and later saves chain
// onto m.
func (s *Session) BindSuspended(p Program, store BlobStore, m *Manifest) error {
	if err := s.begin("BindSuspended", StateIdle); err != nil {
		return err
	}
	defer s.mu.Unlock()
	if p.Phases < 0 || (p.Phases > 0 && p.Phase == nil) {
		return &ProgramError{Msg: "Phase function missing"}
	}
	if store == nil || m == nil {
		return &ProgramError{Msg: "BindSuspended needs a store and a manifest"}
	}
	s.prog = &p
	s.current = nil
	s.checkpoints = nil
	s.lastManifest = m
	s.evictStore = store
	s.pos = -1 // unknown until the first Step loads the image
	s.state = StateSuspended
	return nil
}

// Step runs the bound program forward by at most budget phases and
// captures a checkpoint at the barrier it stops at, leaving the session
// Quiescent there. A Suspended session transparently reloads its image
// from the store first. The final slice both checkpoints at the last
// barrier and computes the program result; re-stepping a finished
// session re-derives the same result from the resting image (delivery
// is idempotent because execution is deterministic).
//
// A slice that dies mid-way — a phase panics (the kernel converts the
// panic into a trap status) or the machine traps — returns that error
// with the pre-slice checkpoint intact, so a killed worker's slice can
// simply be re-run; because execution is deterministic, the retry's
// StepResult.Digest must equal the digest the first attempt would have
// produced.
func (s *Session) Step(budget int) (StepResult, error) {
	if err := s.begin("Step", StateQuiescent, StateSuspended); err != nil {
		return StepResult{}, err
	}
	defer s.mu.Unlock()
	if s.prog == nil {
		return StepResult{}, &StateError{Op: "Step", State: s.state, Msg: "no program bound; Bind one first"}
	}
	if budget < 1 {
		return StepResult{}, &ProgramError{Msg: fmt.Sprintf("step budget %d (must be >= 1)", budget)}
	}
	p := *s.prog
	img := s.current
	if s.state == StateSuspended {
		loaded, err := LoadImage(s.evictStore, s.lastManifest)
		if err != nil {
			return StepResult{}, err
		}
		img = loaded
	}
	pos := 0
	if img != nil {
		pos = img.Phase
	}
	stop := pos + budget
	if stop > p.Phases {
		stop = p.Phases
	}
	// Crash safety: a panic inside a phase must leave the pre-slice
	// resting state intact so the slice can be re-run from it.
	prevState, prevCur := s.state, s.current
	defer func() {
		if r := recover(); r != nil {
			s.state, s.current = prevState, prevCur
			panic(r)
		}
	}()
	res, err := s.runPhased(p, img, stop, true)
	if err == nil && len(s.checkpoints) == 0 && pos < p.Phases {
		// The machine stopped before the slice's barrier: a phase panicked
		// (the kernel converts panics into trap statuses) or trapped.
		err = res.Err
		if err == nil {
			err = &ProgramError{Msg: fmt.Sprintf("slice ended before barrier %d", stop)}
		}
	}
	if err != nil {
		s.state, s.current = prevState, prevCur
		return StepResult{}, err
	}
	if n := len(s.checkpoints); n > 0 {
		s.current = s.checkpoints[n-1]
	} else if img != nil {
		// Re-stepping a finished program: no new barrier was crossed, the
		// resting image is unchanged.
		s.current = img
	}
	s.state = StateQuiescent
	sr := StepResult{Phase: p.Phases}
	if s.current != nil {
		sr.Phase = s.current.Phase
		sr.Pages = len(s.current.Kernel) >> vm.PageShift
		raw, err := s.current.Bytes()
		if err != nil {
			return StepResult{}, err
		}
		sr.Digest = castore.KeyOf(raw)
	}
	s.pos = sr.Phase
	sr.Done = sr.Phase == p.Phases
	if sr.Done {
		sr.Result = res
	}
	return sr, nil
}

// Suspend evicts the session's resting checkpoint into store and drops
// it from memory, leaving the session Suspended: its only cost until
// the next Step is the chained manifest. Successive Suspends (and
// SaveTo) chain, so each eviction stores only chunks new since the
// previous one.
func (s *Session) Suspend(store BlobStore) (*Manifest, error) {
	if err := s.begin("Suspend", StateQuiescent); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if s.current == nil {
		return nil, &StateError{Op: "Suspend", State: s.state,
			Msg: "no captured checkpoint to evict; Step first"}
	}
	m, err := SaveImage(store, s.current, s.lastManifest)
	if err != nil {
		return nil, err
	}
	s.lastManifest = m
	s.evictStore = store
	s.current = nil
	s.checkpoints = nil
	s.state = StateSuspended
	return m, nil
}

// Close releases the session's in-memory run state and moves it to the
// terminal Closed state. Closing an already-closed session is a no-op;
// closing mid-run fails with *StateError. The store side is untouched:
// a Suspended session's manifest chain survives its Session, and
// LastManifest remains readable for GC rooting or re-admission.
func (s *Session) Close() error {
	if !s.mu.TryLock() {
		return &StateError{Op: "Close", State: StateRunning}
	}
	defer s.mu.Unlock()
	s.state = StateClosed
	s.prog = nil
	s.current = nil
	s.checkpoints = nil
	s.log = nil
	s.prefix = nil
	return nil
}

// Phase reports the phase barrier the session rests at: 0 for a freshly
// bound program, -1 for a BindSuspended session that has not loaded its
// image yet.
func (s *Session) Phase() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.current != nil {
		return s.current.Phase
	}
	return s.pos
}

// LastManifest returns the most recent manifest this session saved
// (SaveTo, Suspend) or resumed from (ResumeFrom, BindSuspended), nil
// when none: the root to protect during store GC and the handle needed
// to re-admit the session elsewhere.
func (s *Session) LastManifest() *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastManifest
}

// --- checkpoint images --------------------------------------------------------

// Image is one captured checkpoint: everything a fresh process needs to
// continue the run bit-identically. Serialize with Bytes, reload with
// DecodeImage.
type Image struct {
	// Phase is the phase index the resumed run continues at.
	Phase int
	// RT is the runtime bookkeeping (allocator cursor, placements,
	// collection mode).
	RT core.RTState
	// User holds the sections Program.Snapshot contributed.
	User map[string][]byte
	// TracePrefix is the trace recorded up to the checkpoint (Record
	// mode only): the part of the log a resumed recording splices in
	// front of its own.
	TracePrefix *TraceLog
	// Kernel is the machine image: the whole space tree, counters and
	// device cursors.
	Kernel []byte
}

// ImageVersion is the session-image format version. The kernel section
// carries its own version (kernel.CheckpointVersion).
const ImageVersion = 1

const imageMagic = "DSES"

// ImageError reports a structurally invalid session image.
type ImageError struct {
	Offset int
	Msg    string
}

func (e *ImageError) Error() string {
	return fmt.Sprintf("repro: bad session image at byte %d: %s", e.Offset, e.Msg)
}

// Bytes serializes the image. The encoding is canonical: the same image
// state always produces the same bytes.
func (im *Image) Bytes() ([]byte, error) {
	var b []byte
	b = append(b, imageMagic...)
	b = append(b, ImageVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(im.Phase))

	b = binary.LittleEndian.AppendUint32(b, im.RT.Base)
	b = binary.LittleEndian.AppendUint64(b, im.RT.Size)
	b = binary.LittleEndian.AppendUint32(b, im.RT.Next)
	var tj byte
	if im.RT.TreeJoin {
		tj = 1
	}
	b = append(b, tj)
	ids := make([]int, 0, len(im.RT.Placed))
	for id := range im.RT.Placed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(id)))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(im.RT.Placed[id])))
	}

	names := make([]string, 0, len(im.User))
	for n := range im.User {
		names = append(names, n)
	}
	sort.Strings(names)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(names)))
	for _, n := range names {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(n)))
		b = append(b, n...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(im.User[n])))
		b = append(b, im.User[n]...)
	}

	if im.TracePrefix != nil {
		tb, err := json.Marshal(im.TracePrefix)
		if err != nil {
			return nil, err
		}
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(tb)))
		b = append(b, tb...)
	} else {
		b = append(b, 0)
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(im.Kernel)))
	b = append(b, im.Kernel...)
	return imgenc.Seal(b), nil
}

// DecodeImage parses a serialized session image. Corrupt or truncated
// input returns *ImageError; a newer format version returns
// *kernel.ImageVersionError-style typed errors from the embedded
// sections or *ImageError here.
func DecodeImage(data []byte) (*Image, error) {
	r, err := imgenc.Open(data, imageMagic, ImageVersion,
		func(off int, msg string) error { return &ImageError{Offset: off, Msg: msg} },
		func(v byte) error {
			return &ImageError{Offset: 4, Msg: fmt.Sprintf("image version %d not supported (max %d)", v, ImageVersion)}
		})
	if err != nil {
		return nil, err
	}
	im := &Image{}
	im.Phase = int(r.U32())
	im.RT.Base = r.U32()
	im.RT.Size = r.U64()
	im.RT.Next = r.U32()
	im.RT.TreeJoin = r.U8() != 0
	nPlaced := int(r.U32())
	if r.Err == nil && nPlaced*16 > len(r.B) {
		r.Failf("placement count %d exceeds image", nPlaced)
	}
	for i := 0; i < nPlaced && r.Err == nil; i++ {
		id := int(int64(r.U64()))
		node := int(int64(r.U64()))
		if im.RT.Placed == nil {
			im.RT.Placed = make(map[int]int)
		}
		im.RT.Placed[id] = node
	}
	nUser := int(r.U32())
	if r.Err == nil && nUser > len(r.B) {
		r.Failf("section count %d exceeds image", nUser)
	}
	for i := 0; i < nUser && r.Err == nil; i++ {
		name := r.Str()
		body := r.Take(int(r.U32()))
		if r.Err != nil {
			break
		}
		if im.User == nil {
			im.User = make(map[string][]byte)
		}
		im.User[name] = append([]byte(nil), body...)
	}
	if r.U8() != 0 {
		tb := r.Take(int(r.U32()))
		if r.Err == nil {
			l, err := trace.Unmarshal(tb)
			if err != nil {
				return nil, &ImageError{Offset: r.Off, Msg: fmt.Sprintf("trace prefix: %v", err)}
			}
			im.TracePrefix = l
		}
	}
	im.Kernel = append([]byte(nil), r.Take(int(r.U32()))...)
	if r.Err == nil && r.Remaining() != 0 {
		r.Failf("%d trailing bytes", r.Remaining())
	}
	if r.Err != nil {
		return nil, r.Err
	}
	return im, nil
}

// AttachSched rebuilds a deterministic scheduler from state exported by
// Sched.ExportState — the Program.Restore-side pair of stashing the
// scheduler in a checkpoint image (see SchedState).
func AttachSched(rt *RT, cfg SchedConfig, st SchedState) (*Sched, error) {
	return dsched.AttachState(rt, cfg, st)
}
