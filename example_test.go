package repro_test

import (
	"fmt"
	"strings"

	repro "repro"
)

// The paper's §2.2 example: two "racing" assignments that always swap.
func ExampleRun() {
	res := repro.Run(repro.Options{}, func(rt *repro.RT) uint64 {
		x := rt.Alloc(4, 0)
		y := rt.Alloc(4, 0)
		rt.Env().WriteU32(x, 1)
		rt.Env().WriteU32(y, 2)
		rt.Fork(0, func(t *repro.Thread) uint64 {
			t.Env().WriteU32(x, t.Env().ReadU32(y))
			return 0
		})
		rt.Fork(1, func(t *repro.Thread) uint64 {
			t.Env().WriteU32(y, t.Env().ReadU32(x))
			return 0
		})
		rt.Join(0)
		rt.Join(1)
		return uint64(rt.Env().ReadU32(x))*10 + uint64(rt.Env().ReadU32(y))
	})
	fmt.Println(res.Ret)
	// Output: 21
}

// Futures: Join returns each thread's result value.
func ExampleRT_ParallelDo() {
	res := repro.Run(repro.Options{}, func(rt *repro.RT) uint64 {
		results, err := rt.ParallelDo(4, func(t *repro.Thread) uint64 {
			return uint64(t.ID) * uint64(t.ID)
		})
		if err != nil {
			panic(err)
		}
		var sum uint64
		for _, r := range results {
			sum += r
		}
		return sum
	})
	fmt.Println(res.Ret)
	// Output: 14
}

// A minimal process tree: init forks a child, waits, and the child's
// console output arrives exactly once, in order.
func ExampleBoot() {
	reg := repro.NewRegistry()
	reg.Register("init", func(p *repro.Proc) int {
		pid, _ := p.Fork(func(c *repro.Proc) int {
			c.ConsoleWrite([]byte("hello from pid-local child\n"))
			return 0
		})
		p.Waitpid(pid)
		return 0
	})
	var out strings.Builder
	repro.Boot(repro.BootConfig{Registry: reg, Stdout: &out}, "init")
	fmt.Print(out.String())
	// Output: hello from pid-local child
}

// Write/write races surface as conflicts, not corruption.
func ExampleConflictError() {
	res := repro.Run(repro.Options{}, func(rt *repro.RT) uint64 {
		slot := rt.Alloc(4, 0)
		rt.Fork(0, func(t *repro.Thread) uint64 { t.Env().WriteU32(slot, 1); return 0 })
		rt.Fork(1, func(t *repro.Thread) uint64 { t.Env().WriteU32(slot, 2); return 0 })
		rt.Join(0)
		if _, err := rt.Join(1); err != nil {
			return 1 // deterministically detected
		}
		return 0
	})
	fmt.Println(res.Ret)
	// Output: 1
}
