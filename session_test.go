package repro

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// --- helpers -----------------------------------------------------------------

// resultKey is everything a checkpoint/resume must reproduce bit-exactly.
type resultKey struct {
	Ret    uint64
	VT     int64
	Insns  int64
	Msgs   int64
	Pages  int64
	ErrStr string
}

func keyOf(res RunResult, err error) resultKey {
	k := resultKey{Ret: res.Ret, VT: res.VT, Insns: res.Insns,
		Msgs: res.Net.Msgs, Pages: res.Net.Pages}
	if err != nil {
		k.ErrStr = err.Error()
	} else if res.Err != nil {
		k.ErrStr = res.Err.Error()
	}
	return k
}

// mustSession builds a session or fails the test.
func mustSession(t testing.TB, opts ...SessionOption) *Session {
	t.Helper()
	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// roundTripImage serializes and reparses an image, simulating a fresh
// process that received the bytes.
func roundTripImage(t testing.TB, img *Image) *Image {
	t.Helper()
	data, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	return img2
}

// roundTripStore ships an image through a content-addressed store —
// SaveImage, manifest bytes, LoadImage — asserting the loaded image is
// byte-identical to the flat form. Resuming its result therefore
// exercises the chunked path and the flat path at once: they are
// literally the same bytes.
func roundTripStore(t testing.TB, img *Image) *Image {
	t.Helper()
	store := NewMemStore()
	m, err := SaveImage(store, img, nil)
	if err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	m2, err := DecodeManifest(m.Bytes())
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	img2, err := LoadImage(store, m2)
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	flat, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := img2.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flat, loaded) {
		t.Fatalf("store round trip changed the image: %d bytes vs %d", len(loaded), len(flat))
	}
	return img2
}

// checkpointEverywhere verifies the full equivalence contract for a
// phased program under a session configuration: for every barrier k,
// running to a checkpoint at k, shipping the image through bytes, and
// resuming in a fresh session yields a result bit-identical to the
// uninterrupted run (including any error, e.g. a conflict report).
func checkpointEverywhere(t *testing.T, opts []SessionOption, p Program) {
	t.Helper()
	res, err := mustSession(t, opts...).RunProgram(p)
	want := keyOf(res, err)

	for k := 1; k <= p.Phases; k++ {
		img, err := mustSession(t, opts...).RunToCheckpoint(p, k)
		if err != nil {
			// A program that fails before barrier k cannot checkpoint
			// there; the uninterrupted run must have failed identically.
			if want.ErrStr == "" || err.Error() != want.ErrStr {
				t.Fatalf("barrier %d: checkpoint run failed with %v, uninterrupted with %q", k, err, want.ErrStr)
			}
			continue
		}
		res, rerr := mustSession(t, opts...).Resume(roundTripStore(t, roundTripImage(t, img)), p)
		if got := keyOf(res, rerr); got != want {
			t.Fatalf("resume from barrier %d diverged:\n got %+v\nwant %+v", k, got, want)
		}
	}

	// Checkpointing must be a pure observation: capturing an image at
	// every barrier while running to completion changes nothing.
	all := make([]int, p.Phases)
	for i := range all {
		all[i] = i + 1
	}
	obs := mustSession(t, append(append([]SessionOption{}, opts...), WithCheckpointAfter(all...))...)
	res2, err2 := obs.RunProgram(p)
	if got := keyOf(res2, err2); got != want {
		t.Fatalf("checkpointing run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// --- workload 1: private-workspace fork/join over a shared array ------------

// arrayProgram stripes updates over a shared array with ParallelDo,
// folding per-thread results and the array into a checksum. With
// conflictAt >= 0, that phase deliberately double-writes one word so a
// deterministic ConflictError surfaces.
func arrayProgram(threads, phases, words int, conflictAt int, place func(i int) int) Program {
	var arr, acc Addr
	return Program{
		Phases: phases,
		Layout: func(rt *RT) {
			arr = rt.Alloc(uint64(8*words), 8)
			acc = rt.Alloc(8, 8)
		},
		Init: func(rt *RT) {
			for i := 0; i < words; i++ {
				rt.Env().WriteU64(arr+Addr(8*i), uint64(i)*2654435761)
			}
			rt.Env().WriteU64(acc, 1)
		},
		Phase: func(rt *RT, p int) error {
			body := func(t *Thread) uint64 {
				lo, hi := t.ID*words/threads, (t.ID+1)*words/threads
				var sum uint64
				for i := lo; i < hi; i++ {
					a := arr + Addr(8*i)
					v := t.Env().ReadU64(a)*6364136223846793005 + uint64(p) + 1
					t.Env().WriteU64(a, v)
					sum += v
				}
				if p == conflictAt {
					t.Env().WriteU64(acc, uint64(t.ID)) // every thread: conflict
				}
				return sum
			}
			var rets []uint64
			var err error
			if place != nil {
				rets, err = rt.ParallelDoOn(threads, place, body)
			} else {
				rets, err = rt.ParallelDo(threads, body)
			}
			if err != nil {
				return err
			}
			h := rt.Env().ReadU64(acc)
			for _, r := range rets {
				h = h*31 + r
			}
			rt.Env().WriteU64(acc, h)
			return nil
		},
		Result: func(rt *RT) uint64 {
			h := rt.Env().ReadU64(acc)
			for i := 0; i < words; i += 7 {
				h = h*1099511628211 + rt.Env().ReadU64(arr+Addr(8*i))
			}
			return h
		},
	}
}

func TestSessionCheckpointResumeArray(t *testing.T) {
	opts := []SessionOption{WithMachine(MachineConfig{CPUsPerNode: 4, MergeWorkers: 1})}
	checkpointEverywhere(t, opts, arrayProgram(4, 4, 4096, -1, nil))
}

func TestSessionCheckpointResumeConflictReport(t *testing.T) {
	// The conflict fires in phase 2; resuming from barriers 1 and 2 must
	// reproduce the identical conflict report, and later barriers are
	// unreachable (verified against the uninterrupted failure).
	opts := []SessionOption{WithMachine(MachineConfig{CPUsPerNode: 2, MergeWorkers: 1})}
	p := arrayProgram(3, 4, 512, 2, nil)
	res, err := mustSession(t, opts...).RunProgram(p)
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("uninterrupted run: want conflict, got %v (res %+v)", err, res)
	}
	checkpointEverywhere(t, opts, p)
}

func TestSessionCheckpointResumeMultiNodeTree(t *testing.T) {
	for _, tree := range []bool{false, true} {
		t.Run(fmt.Sprintf("tree=%v", tree), func(t *testing.T) {
			opts := []SessionOption{
				WithMachine(MachineConfig{Nodes: 3, CPUsPerNode: 2, MergeWorkers: 1}),
				WithTreeJoin(tree),
			}
			place := func(i int) int { return i % 3 }
			checkpointEverywhere(t, opts, arrayProgram(6, 3, 2048, -1, place))
		})
	}
}

// --- workload 2: dsched (legacy mutex code) across phases --------------------

// dschedProgram runs a mutex-protected accumulator under the
// deterministic scheduler in every phase, carrying one Sched across all
// phases — and, through Snapshot/Restore, across the checkpoint.
func dschedProgram(t *testing.T, sess func() *Session, threads, phases int) Program {
	var cell Addr
	var sched *Sched
	cfg := SchedConfig{Quantum: 3000}
	mkSched := func(rt *RT) {
		var err error
		sched, err = NewSchedWith(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	var mu Mutex
	body := func(p int) func(st *SchedThread) {
		return func(st *SchedThread) {
			for i := 0; i < 4; i++ {
				st.Lock(mu)
				v := st.Env().ReadU64(cell)
				st.Env().Tick(int64(50 * (st.ID + 1)))
				st.Env().WriteU64(cell, v*31+uint64(st.ID+p)+1)
				st.Unlock(mu)
				st.Yield()
			}
		}
	}
	return Program{
		Phases: phases,
		Layout: func(rt *RT) { cell = rt.Alloc(8, 8) },
		Init: func(rt *RT) {
			rt.Env().WriteU64(cell, 7)
			mkSched(rt)
			mu = sched.NewMutex()
		},
		Phase: func(rt *RT, p int) error {
			return sched.Run(threads, func(st *SchedThread) { body(p)(st) })
		},
		Result: func(rt *RT) uint64 {
			st := sched.Stats()
			return rt.Env().ReadU64(cell)*1000003 + uint64(st.Rounds)*31 + uint64(st.ThreadQuanta)
		},
		Snapshot: func(rt *RT) map[string][]byte {
			st, err := sched.ExportState()
			if err != nil {
				t.Errorf("sched export: %v", err)
				return nil
			}
			b, err := json.Marshal(st)
			if err != nil {
				t.Errorf("sched marshal: %v", err)
				return nil
			}
			return map[string][]byte{"sched": b}
		},
		Restore: func(rt *RT, sections map[string][]byte) error {
			var st SchedState
			if err := json.Unmarshal(sections["sched"], &st); err != nil {
				return err
			}
			var err error
			sched, err = AttachSched(rt, cfg, st)
			if err != nil {
				return err
			}
			mu = Mutex(0)
			return nil
		},
	}
}

func TestSessionCheckpointResumeDsched(t *testing.T) {
	opts := []SessionOption{WithMachine(MachineConfig{CPUsPerNode: 4, MergeWorkers: 1})}
	sess := func() *Session { return mustSession(t, opts...) }
	p := dschedProgram(t, sess, 3, 4)
	res, err := sess().RunProgram(p)
	if err != nil || res.Err != nil {
		t.Fatalf("dsched run: %v / %v", err, res.Err)
	}
	want := keyOf(res, err)
	for k := 1; k <= p.Phases; k++ {
		img, err := sess().RunToCheckpoint(p, k)
		if err != nil {
			t.Fatalf("checkpoint at %d: %v", k, err)
		}
		res, rerr := sess().Resume(roundTripImage(t, img), p)
		if got := keyOf(res, rerr); got != want {
			t.Fatalf("dsched resume from barrier %d diverged:\n got %+v\nwant %+v", k, got, want)
		}
	}
}

// --- workload 3: recorded-trace run ------------------------------------------

// deviceProgram folds clock and entropy readings into the state each
// phase, so the device cursors matter to the result.
func deviceProgram(threads, phases int) Program {
	var cell Addr
	base := arrayProgram(threads, phases, 256, -1, nil)
	inner := base.Phase
	return Program{
		Phases: phases,
		Layout: func(rt *RT) {
			base.Layout(rt)
			cell = rt.Alloc(8, 8)
		},
		Init: base.Init,
		Phase: func(rt *RT, p int) error {
			if err := inner(rt, p); err != nil {
				return err
			}
			h := rt.Env().ReadU64(cell)
			h = h*31 + uint64(rt.Env().ClockNow())
			h = h*31 + rt.Env().RandUint64()
			rt.Env().WriteU64(cell, h)
			return nil
		},
		Result: func(rt *RT) uint64 {
			return base.Result(rt)*131 + rt.Env().ReadU64(cell)
		},
	}
}

func TestSessionCheckpointResumeRecordedTrace(t *testing.T) {
	mk := func() *Session { return mustSession(t, WithRecord(), WithMachine(MachineConfig{MergeWorkers: 1})) }
	p := deviceProgram(3, 4)

	full := mk()
	res, err := full.RunProgram(p)
	if err != nil || res.Err != nil {
		t.Fatalf("recorded run: %v / %v", err, res.Err)
	}
	want := keyOf(res, err)
	wantLog, err := full.TraceLog().Marshal()
	if err != nil {
		t.Fatal(err)
	}

	for k := 1; k <= p.Phases; k++ {
		ck := mk()
		img, err := ck.RunToCheckpoint(p, k)
		if err != nil {
			t.Fatalf("checkpoint at %d: %v", k, err)
		}
		if img.TracePrefix == nil {
			t.Fatalf("record-mode image at %d carries no trace prefix", k)
		}
		resumed := mk()
		res, rerr := resumed.Resume(roundTripImage(t, img), p)
		if got := keyOf(res, rerr); got != want {
			t.Fatalf("recorded resume from %d diverged:\n got %+v\nwant %+v", k, got, want)
		}
		// The spliced log must equal the uninterrupted recording bit for
		// bit: prefix re-recorded by the fast-forward, continuation live.
		gotLog, err := resumed.TraceLog().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotLog, wantLog) {
			t.Fatalf("spliced trace log at %d differs:\n got %s\nwant %s", k, gotLog, wantLog)
		}
	}

	// And a replayed session checkpoints/resumes mid-log too.
	restored, err := UnmarshalTrace(wantLog)
	if err != nil {
		t.Fatal(err)
	}
	mkReplay := func() *Session {
		return mustSession(t, WithReplay(restored), WithMachine(MachineConfig{MergeWorkers: 1}))
	}
	img, err := mkReplay().RunToCheckpoint(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := mkReplay().Resume(roundTripImage(t, img), p)
	if got := keyOf(res, rerr); got != want {
		t.Fatalf("replayed resume diverged:\n got %+v\nwant %+v", got, want)
	}
}

// Console input splices across a checkpoint too: a recorded run that
// consumes multi-kilobyte console input before and after the barrier
// resumes with the same bytes, the same chunking, and a spliced log
// bit-identical to the uninterrupted recording.
func TestSessionCheckpointResumeConsoleSplice(t *testing.T) {
	input := func() string {
		b := make([]byte, 11000) // > the console's 4096-byte read granularity
		for i := range b {
			b[i] = byte('a' + i%23)
		}
		return string(b)
	}
	mk := func() *Session {
		return mustSession(t, WithRecord(),
			WithConsole(strings.NewReader(input()), nil),
			WithMachine(MachineConfig{MergeWorkers: 1}))
	}
	var cell Addr
	p := Program{
		Phases: 3,
		Layout: func(rt *RT) { cell = rt.Alloc(8, 8) },
		Init:   func(rt *RT) { rt.Env().WriteU64(cell, 3) },
		Phase: func(rt *RT, phase int) error {
			buf := make([]byte, 2500+1700*phase) // crosses the 4096 granularity
			h := rt.Env().ReadU64(cell)
			for read := 0; read < len(buf); {
				n := rt.Env().ConsoleRead(buf[read:])
				if n == 0 {
					break
				}
				for _, c := range buf[read : read+n] {
					h = h*31 + uint64(c)
				}
				read += n
			}
			rt.Env().WriteU64(cell, h)
			return nil
		},
		Result: func(rt *RT) uint64 { return rt.Env().ReadU64(cell) },
	}

	full := mk()
	res, err := full.RunProgram(p)
	if err != nil || res.Err != nil {
		t.Fatalf("console run: %v / %v", err, res.Err)
	}
	want := keyOf(res, err)
	wantLog, err := full.TraceLog().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.TraceLog().Input) == 0 {
		t.Fatal("no console input recorded")
	}

	for k := 1; k <= p.Phases; k++ {
		img, err := mk().RunToCheckpoint(p, k)
		if err != nil {
			t.Fatalf("checkpoint at %d: %v", k, err)
		}
		resumed := mk()
		res, rerr := resumed.Resume(roundTripImage(t, img), p)
		if got := keyOf(res, rerr); got != want {
			t.Fatalf("console resume from %d diverged:\n got %+v\nwant %+v", k, got, want)
		}
		gotLog, err := resumed.TraceLog().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotLog, wantLog) {
			t.Fatalf("spliced console log at %d differs from the uninterrupted recording", k)
		}
	}
}

// --- property test: random workloads × random barriers ----------------------

func TestSessionCheckpointResumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for it := 0; it < iters; it++ {
		threads := 2 + rng.Intn(4)
		phases := 2 + rng.Intn(4)
		words := 256 << rng.Intn(3)
		nodes := []int{1, 1, 2, 3}[rng.Intn(4)]
		tree := nodes > 1 && rng.Intn(2) == 0
		conflictAt := -1
		if rng.Intn(3) == 0 {
			conflictAt = rng.Intn(phases)
		}
		var place func(i int) int
		if nodes > 1 {
			place = func(i int) int { return i % nodes }
		}
		opts := []SessionOption{
			WithMachine(MachineConfig{Nodes: nodes, CPUsPerNode: 1 + rng.Intn(3), MergeWorkers: 1}),
			WithTreeJoin(tree),
		}
		p := arrayProgram(threads, phases, words, conflictAt, place)

		res, err := mustSession(t, opts...).RunProgram(p)
		want := keyOf(res, err)
		k := 1 + rng.Intn(phases) // random barrier
		img, err := mustSession(t, opts...).RunToCheckpoint(p, k)
		if err != nil {
			if want.ErrStr == "" || err.Error() != want.ErrStr {
				t.Fatalf("iter %d: checkpoint failed %v, uninterrupted %q", it, err, want.ErrStr)
			}
			continue
		}
		res, rerr := mustSession(t, opts...).Resume(roundTripImage(t, img), p)
		if got := keyOf(res, rerr); got != want {
			t.Fatalf("iter %d (threads=%d phases=%d nodes=%d tree=%v conflict=%d ck=%d) diverged:\n got %+v\nwant %+v",
				it, threads, phases, nodes, tree, conflictAt, k, got, want)
		}
	}
}

// --- image format and API-surface tests --------------------------------------

func TestSessionImageRoundTripAndRejects(t *testing.T) {
	img, err := mustSession(t, WithMachine(MachineConfig{MergeWorkers: 1})).
		RunToCheckpoint(arrayProgram(2, 2, 128, -1, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != ImageVersion {
		t.Fatalf("session image version byte = %d, want %d", data[4], ImageVersion)
	}
	var ie *ImageError
	for _, cut := range []int{0, 4, len(data) / 2, len(data) - 1} {
		if _, err := DecodeImage(data[:cut]); !errors.As(err, &ie) {
			t.Fatalf("truncated at %d: got %v", cut, err)
		}
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/3] ^= 0x20
	if _, err := DecodeImage(bad); !errors.As(err, &ie) {
		t.Fatalf("corrupt: got %v", err)
	}
	// Resume under a mismatched machine fails with the typed kernel error.
	img2, err := DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	var mm *ImageMismatchError
	_, err = mustSession(t, WithMachine(MachineConfig{Nodes: 2, MergeWorkers: 1})).
		Resume(img2, arrayProgram(2, 2, 128, -1, nil))
	if !errors.As(err, &mm) {
		t.Fatalf("mismatched resume: got %v, want *ImageMismatchError", err)
	}
}

func TestSessionConfigValidation(t *testing.T) {
	var ce *ConfigError
	if _, err := NewSession(WithMachine(MachineConfig{MergeWorkers: -1})); !errors.As(err, &ce) || ce.Field != "Machine.MergeWorkers" {
		t.Fatalf("negative workers: %v", err)
	}
	if _, err := NewSession(WithMachine(MachineConfig{Nodes: -2})); !errors.As(err, &ce) || ce.Field != "Machine.Nodes" {
		t.Fatalf("negative nodes: %v", err)
	}
	if _, err := NewSession(WithSharedSize(1 << 40)); !errors.As(err, &ce) || ce.Field != "SharedSize" {
		t.Fatalf("oversized region: %v", err)
	}
	var se *SchedConfigError
	if _, err := NewSession(WithSched(SchedConfig{Quantum: -5})); !errors.As(err, &se) || se.Field != "Quantum" {
		t.Fatalf("negative quantum: %v", err)
	}
	if _, err := NewSession(WithRecord(), WithReplay(&TraceLog{})); !errors.As(err, &ce) {
		t.Fatalf("record+replay: %v", err)
	}
	if _, err := NewSession(WithCheckpointAfter(0)); !errors.As(err, &ce) {
		t.Fatalf("bad barrier: %v", err)
	}
	// A barrier beyond the program's phase count is only detectable at
	// run time; it must fail loudly, not silently capture nothing.
	var pe *ProgramError
	s := mustSession(t, WithCheckpointAfter(7))
	if _, err := s.RunProgram(arrayProgram(2, 3, 64, -1, nil)); !errors.As(err, &pe) {
		t.Fatalf("out-of-range CheckpointAfter: %v, want *ProgramError", err)
	}
}

// The legacy wrappers now validate instead of silently defaulting.
func TestLegacyWrapperValidation(t *testing.T) {
	res := Run(Options{}, func(rt *RT) uint64 {
		// Negative quantum: typed panic from the legacy wrapper.
		func() {
			defer func() {
				r := recover()
				err, ok := r.(error)
				var se *SchedConfigError
				if !ok || !errors.As(err, &se) {
					panic(fmt.Sprintf("NewSched(-1) panicked with %v, want *SchedConfigError", r))
				}
			}()
			NewSched(rt, -1)
		}()
		// Zero still selects the documented default.
		if s := NewSched(rt, 0); s == nil {
			panic("NewSched(0) returned nil")
		}
		// The full-config path surfaces the same error without panicking.
		if _, err := NewSchedWith(rt, SchedConfig{CollectWorkers: -3}); err == nil {
			panic("NewSchedWith accepted negative workers")
		}
		// NewRTWith refuses machine config (the machine is already built)
		// instead of silently dropping it.
		var ce *ConfigError
		if _, err := NewRTWith(rt.Env(), Options{Kernel: MachineConfig{Nodes: 4}}); !errors.As(err, &ce) || ce.Field != "Kernel" {
			panic(fmt.Sprintf("NewRTWith(Kernel) = %v, want *ConfigError{Kernel}", err))
		}
		return 1
	})
	if res.Err != nil || res.Ret != 1 {
		t.Fatalf("legacy validation run: %+v", res)
	}

	res = Run(Options{}, func(rt *RT) uint64 { return 0 })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if _, err := NewSession(); err != nil {
		t.Fatalf("zero-config session invalid: %v", err)
	}
}

// Session.Run honors the composed configuration the free functions used
// to take separately: record/replay through the session reproduces runs.
func TestSessionRunRecordReplay(t *testing.T) {
	prog := func(rt *RT) uint64 {
		h := uint64(7)
		for i := 0; i < 5; i++ {
			h = h*31 + rt.Env().RandUint64() + uint64(rt.Env().ClockNow())
		}
		return h
	}
	rec := mustSession(t, WithRecord())
	res1 := rec.Run(prog)
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	if got := len(rec.TraceLog().Rand); got != 5 {
		t.Fatalf("recorded %d rand readings, want 5", got)
	}
	rep := mustSession(t, WithReplay(rec.TraceLog()))
	res2 := rep.Run(prog)
	if res2.Ret != res1.Ret || res2.VT != res1.VT {
		t.Fatalf("replayed session diverged: %+v vs %+v", res2, res1)
	}
}

func TestSessionConsole(t *testing.T) {
	var out strings.Builder
	s := mustSession(t, WithConsole(strings.NewReader("ping"), &out))
	res := s.Run(func(rt *RT) uint64 {
		buf := make([]byte, 16)
		n := rt.Env().ConsoleRead(buf)
		rt.Env().ConsoleWrite([]byte("got:" + string(buf[:n])))
		return uint64(n)
	})
	if res.Err != nil || res.Ret != 4 || out.String() != "got:ping" {
		t.Fatalf("console session: %+v out=%q", res, out.String())
	}
}
