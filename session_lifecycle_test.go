package repro

// Lifecycle tests for the stepped Session API: the explicit
// Idle/Running/Quiescent/Suspended/Closed state machine, typed
// StateErrors on misuse, and the bit-identity of stepped, suspended and
// retried executions against the uninterrupted run — the property the
// serving fabric's eviction and failover paths lean on.

import (
	"errors"
	"sync"
	"testing"
)

// stepOpts is the machine shape every stepped test uses; resumes must
// match the capture shape.
func stepOpts() []SessionOption {
	return []SessionOption{WithMachine(MachineConfig{CPUsPerNode: 4, MergeWorkers: 1})}
}

// stepToEnd drives a bound session to completion with the given budget
// and returns the final StepResult.
func stepToEnd(t *testing.T, s *Session, budget int) StepResult {
	t.Helper()
	for i := 0; ; i++ {
		sr, err := s.Step(budget)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if sr.Done {
			return sr
		}
		if i > 100 {
			t.Fatal("program never finished")
		}
	}
}

func TestSessionStateMachine(t *testing.T) {
	p := arrayProgram(3, 4, 512, -1, nil)
	s := mustSession(t, stepOpts()...)
	if got := s.State(); got != StateIdle {
		t.Fatalf("fresh state = %v, want Idle", got)
	}
	if err := s.Bind(p); err != nil {
		t.Fatal(err)
	}
	if got, ph := s.State(), s.Phase(); got != StateQuiescent || ph != 0 {
		t.Fatalf("bound state = %v at phase %d, want Quiescent at 0", got, ph)
	}
	sr, err := s.Step(2)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Done || sr.Phase != 2 || sr.Pages == 0 || sr.Digest.IsZero() {
		t.Fatalf("after Step(2): %+v", sr)
	}
	if got := s.State(); got != StateQuiescent {
		t.Fatalf("state after partial step = %v, want Quiescent", got)
	}

	store := NewMemStore()
	m, err := s.Suspend(store)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != StateSuspended {
		t.Fatalf("state after Suspend = %v, want Suspended", got)
	}
	if lm := s.LastManifest(); lm == nil || lm.Key() != m.Key() {
		t.Fatal("LastManifest does not return the suspend manifest")
	}

	// Step transparently reloads from the store and finishes.
	final := stepToEnd(t, s, 1)
	if final.Phase != 4 || !final.Done {
		t.Fatalf("final step: %+v", final)
	}
	if got := s.State(); got != StateQuiescent {
		t.Fatalf("state after final step = %v, want Quiescent", got)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != StateClosed {
		t.Fatalf("state after Close = %v, want Closed", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
}

func TestSessionStateErrors(t *testing.T) {
	p := arrayProgram(2, 3, 256, -1, nil)
	asState := func(t *testing.T, err error, op string, st SessionState) {
		t.Helper()
		var se *StateError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error %v (%T), want *StateError", op, err, err)
		}
		if se.Op != op || se.State != st {
			t.Fatalf("%s: got op %q in state %v, want state %v", op, se.Op, se.State, st)
		}
	}

	t.Run("step unbound", func(t *testing.T) {
		s := mustSession(t, stepOpts()...)
		_, err := s.Step(1)
		asState(t, err, "Step", StateIdle)
	})
	t.Run("suspend idle", func(t *testing.T) {
		s := mustSession(t, stepOpts()...)
		_, err := s.Suspend(NewMemStore())
		asState(t, err, "Suspend", StateIdle)
	})
	t.Run("double bind", func(t *testing.T) {
		s := mustSession(t, stepOpts()...)
		if err := s.Bind(p); err != nil {
			t.Fatal(err)
		}
		asState(t, s.Bind(p), "Bind", StateQuiescent)
	})
	t.Run("one-shot on bound session", func(t *testing.T) {
		s := mustSession(t, stepOpts()...)
		if err := s.Bind(p); err != nil {
			t.Fatal(err)
		}
		_, err := s.RunProgram(p)
		asState(t, err, "RunProgram", StateQuiescent)
		_, err = s.SaveTo(NewMemStore())
		if err == nil {
			t.Fatal("SaveTo on a freshly bound session succeeded, want error")
		}
	})
	t.Run("closed", func(t *testing.T) {
		s := mustSession(t, stepOpts()...)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		asState(t, s.Bind(p), "Bind", StateClosed)
		_, err := s.Step(1)
		asState(t, err, "Step", StateClosed)
		_, err = s.RunProgram(p)
		asState(t, err, "RunProgram", StateClosed)
		res := s.Run(func(rt *RT) uint64 { return 0 })
		asState(t, res.Err, "Run", StateClosed)
	})
	t.Run("mid-run", func(t *testing.T) {
		// A phase that parks lets the test observe the Running state from
		// outside: SaveTo and a second run must fail immediately with
		// *StateError instead of queueing behind the in-flight run.
		entered := make(chan struct{})
		release := make(chan struct{})
		s := mustSession(t, stepOpts()...)
		blocked := Program{
			Phases: 1,
			Phase: func(rt *RT, ph int) error {
				close(entered)
				<-release
				return nil
			},
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.RunProgram(blocked); err != nil {
				t.Errorf("blocked run: %v", err)
			}
		}()
		<-entered
		if got := s.State(); got != StateRunning {
			t.Errorf("state mid-run = %v, want Running", got)
		}
		_, err := s.SaveTo(NewMemStore())
		asState(t, err, "SaveTo", StateRunning)
		_, err = s.Resume(nil, blocked)
		asState(t, err, "Resume", StateRunning)
		close(release)
		wg.Wait()
	})
}

// TestSteppedBitIdentical checks the core serving property: a program
// driven in timeslices — any budget, with eviction to a store between
// every slice — finishes with results bit-identical to the
// uninterrupted run, and rests at bit-identical images along the way.
func TestSteppedBitIdentical(t *testing.T) {
	p := arrayProgram(4, 6, 2048, -1, nil)
	want := keyOf(mustSession(t, stepOpts()...).RunProgram(p))

	// Results are bit-identical for every slicing; resting images at a
	// given barrier are only byte-identical between runs with the same
	// slicing (a restore-then-run machine and a run-through machine rest
	// in equivalent but not byte-equal states).
	digests := map[int]ChunkKey{} // barrier -> resting image digest, budget-1 schedule
	for _, budget := range []int{1, 2, 3, 4, 7} {
		s := mustSession(t, stepOpts()...)
		if err := s.Bind(p); err != nil {
			t.Fatal(err)
		}
		for {
			sr, err := s.Step(budget)
			if err != nil {
				t.Fatalf("budget %d: %v", budget, err)
			}
			if budget == 1 {
				digests[sr.Phase] = sr.Digest
			}
			if sr.Done {
				if got := keyOf(sr.Result, nil); got != want {
					t.Fatalf("budget %d: stepped result %+v, want %+v", budget, got, want)
				}
				break
			}
		}
	}

	// The same schedule re-run from scratch rests at byte-identical
	// images: execution from equal states is deterministic.
	{
		s := mustSession(t, stepOpts()...)
		if err := s.Bind(p); err != nil {
			t.Fatal(err)
		}
		for {
			sr, err := s.Step(1)
			if err != nil {
				t.Fatal(err)
			}
			if digests[sr.Phase] != sr.Digest {
				t.Fatalf("re-run: digest at barrier %d differs from first budget-1 run", sr.Phase)
			}
			if sr.Done {
				break
			}
		}
	}

	// Evict to a store after every slice; the chain resumes transparently
	// and the per-barrier digests match the in-memory schedules above.
	store := NewMemStore()
	s := mustSession(t, stepOpts()...)
	if err := s.Bind(p); err != nil {
		t.Fatal(err)
	}
	for {
		sr, err := s.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		if digests[sr.Phase] != sr.Digest {
			t.Fatalf("evicted run: digest at barrier %d differs from resident runs", sr.Phase)
		}
		if sr.Done {
			if got := keyOf(sr.Result, nil); got != want {
				t.Fatalf("evicted run result %+v, want %+v", got, want)
			}
			break
		}
		if _, err := s.Suspend(store); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBindSuspendedHandoff moves a half-run session between Session
// values through the store — the serving fabric's admission path — and
// checks the handed-off half matches the uninterrupted run.
func TestBindSuspendedHandoff(t *testing.T) {
	p := arrayProgram(3, 5, 1024, -1, nil)
	want := keyOf(mustSession(t, stepOpts()...).RunProgram(p))
	store := NewMemStore()

	for cut := 1; cut < 5; cut++ {
		first := mustSession(t, stepOpts()...)
		if err := first.Bind(p); err != nil {
			t.Fatal(err)
		}
		if sr, err := first.Step(cut); err != nil || sr.Phase != cut {
			t.Fatalf("cut %d: step: %+v, %v", cut, sr, err)
		}
		m, err := first.Suspend(store)
		if err != nil {
			t.Fatal(err)
		}
		if err := first.Close(); err != nil {
			t.Fatal(err)
		}

		second := mustSession(t, stepOpts()...)
		if err := second.BindSuspended(p, store, m); err != nil {
			t.Fatal(err)
		}
		if got, ph := second.State(), second.Phase(); got != StateSuspended || ph != -1 {
			t.Fatalf("cut %d: admitted state %v phase %d, want Suspended/-1", cut, got, ph)
		}
		final := stepToEnd(t, second, 2)
		if got := keyOf(final.Result, nil); got != want {
			t.Fatalf("cut %d: handed-off result %+v, want %+v", cut, got, want)
		}
		// A second Suspend chains onto the admitted manifest.
		m2, err := second.Suspend(store)
		if err != nil {
			t.Fatal(err)
		}
		if parent, ok := m2.Parent(); !ok || parent != m.Key() {
			t.Fatalf("cut %d: final manifest does not chain onto the admitted one", cut)
		}
	}
}

// TestStepRetryAfterCrash re-runs a slice whose phase panicked mid-way
// — the killed-worker path; the kernel converts the panic into a trap
// status Step surfaces as an error — and checks the retry is
// bit-identical to an undisturbed first attempt.
func TestStepRetryAfterCrash(t *testing.T) {
	crash := true
	base := arrayProgram(3, 4, 1024, -1, nil)
	inner := base.Phase
	base.Phase = func(rt *RT, ph int) error {
		if ph == 2 && crash {
			crash = false
			panic("worker killed")
		}
		return inner(rt, ph)
	}

	ref := mustSession(t, stepOpts()...)
	refProg := arrayProgram(3, 4, 1024, -1, nil)
	want := keyOf(ref.RunProgram(refProg))

	s := mustSession(t, stepOpts()...)
	if err := s.Bind(base); err != nil {
		t.Fatal(err)
	}
	if sr, err := s.Step(2); err != nil || sr.Phase != 2 {
		t.Fatalf("pre-crash step: %+v, %v", sr, err)
	}
	preState, prePhase := s.State(), s.Phase()
	if _, err := s.Step(1); err == nil {
		t.Fatal("crashing slice did not surface an error")
	}
	if got, ph := s.State(), s.Phase(); got != preState || ph != prePhase {
		t.Fatalf("state after crash = %v at %d, want %v at %d (pre-slice rest intact)", got, ph, preState, prePhase)
	}
	final := stepToEnd(t, s, 1)
	if got := keyOf(final.Result, nil); got != want {
		t.Fatalf("retried run result %+v, want %+v", got, want)
	}
}

// TestStepResultRedelivery steps a finished session again: delivery is
// idempotent because re-deriving the answer from the resting image is
// deterministic.
func TestStepResultRedelivery(t *testing.T) {
	p := arrayProgram(2, 3, 512, -1, nil)
	s := mustSession(t, stepOpts()...)
	if err := s.Bind(p); err != nil {
		t.Fatal(err)
	}
	first := stepToEnd(t, s, 2)
	again, err := s.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Done || again.Result != first.Result || again.Digest != first.Digest {
		t.Fatalf("redelivery differs: first %+v, again %+v", first, again)
	}
}
