package repro

import (
	"encoding/json"

	"repro/internal/uproc"
)

// uprocSection names the image section UprocProgram stashes the init
// process's Go-side state under.
const uprocSection = "uproc"

// UprocPhase is one barrier-delimited step of a process tree run through
// a Session: fork, exec, wait and perform console I/O freely, but return
// with every child collected — the checkpoint export refuses a barrier
// with uncollected children, because their Go-side closures cannot cross
// an image.
type UprocPhase func(p *Proc) error

// UprocProgram adapts a Unix process tree (internal/uproc) to the
// Session's phased Program form, making process-tree runs checkpointable
// with the same machinery as shared-memory programs: RunToCheckpoint,
// Resume, SaveTo and ResumeFrom all work on the result.
//
// A fresh run creates the init process (formatting the file system and
// console files) before the first phase; a resumed run reattaches it
// over the restored space tree, whose memory already holds the file
// system replica and console files. Only the init process's counters
// (PID/ref allocators, console cursors, pipe serial) cross the image,
// as a JSON "uproc" section. Failures on this path are typed
// (*UprocStateError), never panics.
func UprocProgram(reg *Registry, args []string, phases []UprocPhase) Program {
	var (
		proc  *Proc
		state uproc.InitState
	)
	return Program{
		Phases: len(phases),
		Phase: func(rt *RT, i int) error {
			if i == 0 {
				// Phase 0 is only ever reached on a fresh start (resumes
				// begin after barrier >= 1 and go through Restore), so
				// create the init process here — unconditionally, in case
				// this Program value already ran once.
				p, err := uproc.NewInit(rt.Env(), reg, args)
				if err != nil {
					return err
				}
				proc = p
			}
			if err := phases[i](proc); err != nil {
				return err
			}
			// Flush buffered console output at every barrier: a capture
			// here must record cursors with nothing pending, or output
			// that straddled the checkpoint would be emitted again by
			// every resume. Both the checkpointing and the uninterrupted
			// run flush at the same points, preserving bit-identity.
			proc.Sync()
			// Export eagerly so a capture at this barrier (Snapshot cannot
			// fail) sees a state already validated as quiescent.
			st, err := proc.ExportState()
			if err != nil {
				return err
			}
			state = st
			return nil
		},
		Result: func(rt *RT) uint64 {
			if proc != nil {
				proc.Sync() // final flush of buffered console output
			}
			return 0
		},
		Snapshot: func(rt *RT) map[string][]byte {
			b, err := json.Marshal(state)
			if err != nil {
				// InitState is plain data; Marshal cannot fail on it.
				panic(err)
			}
			return map[string][]byte{uprocSection: b}
		},
		Restore: func(rt *RT, sections map[string][]byte) error {
			raw, ok := sections[uprocSection]
			if !ok {
				return &uproc.StateError{Msg: "image has no uproc section (not captured by a UprocProgram run)"}
			}
			var st uproc.InitState
			if err := json.Unmarshal(raw, &st); err != nil {
				return &uproc.StateError{Msg: "decode uproc section: " + err.Error()}
			}
			p, err := uproc.AttachInit(rt.Env(), reg, args, st)
			if err != nil {
				return err
			}
			proc, state = p, st
			return nil
		},
	}
}
