package repro

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/kernel"
)

// Facade-level integration tests: the library as a downstream user sees
// it, exercising whole vertical slices of the system.

func TestFacadeRunParallelProgram(t *testing.T) {
	res := Run(Options{Kernel: MachineConfig{CPUsPerNode: 4}}, func(rt *RT) uint64 {
		arr := rt.Alloc(4*1000, 4)
		vals := make([]uint32, 1000)
		for i := range vals {
			vals[i] = 1
		}
		rt.Env().WriteU32s(arr, vals)
		results, err := rt.ParallelDo(4, func(th *Thread) uint64 {
			lo, hi := th.ID*250, (th.ID+1)*250
			var sum uint64
			for i := lo; i < hi; i++ {
				sum += uint64(th.Env().ReadU32(arr + Addr(4*i)))
			}
			return sum
		})
		if err != nil {
			panic(err)
		}
		var total uint64
		for _, r := range results {
			total += r
		}
		return total
	})
	if res.Err != nil || res.Ret != 1000 {
		t.Fatalf("facade run: ret=%d err=%v", res.Ret, res.Err)
	}
}

func TestFacadeConflictSurfaces(t *testing.T) {
	res := Run(Options{}, func(rt *RT) uint64 {
		slot := rt.Alloc(8, 8)
		rt.Fork(0, func(th *Thread) uint64 { th.Env().WriteU64(slot, 1); return 0 })
		rt.Fork(1, func(th *Thread) uint64 { th.Env().WriteU64(slot, 2); return 0 })
		rt.Join(0)
		_, err := rt.Join(1)
		var ce *ConflictError
		if !errors.As(err, &ce) {
			panic("no conflict")
		}
		return 1
	})
	if res.Err != nil || res.Ret != 1 {
		t.Fatalf("conflict path: %v", res.Err)
	}
}

func TestFacadeBootProcessTree(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, err := p.Fork(func(c *Proc) int {
			c.ConsoleWrite([]byte("from child\n"))
			return 5
		})
		if err != nil {
			panic(err)
		}
		status, _, err := p.Waitpid(pid)
		if err != nil {
			panic(err)
		}
		return status
	})
	var out bytes.Buffer
	res := Boot(BootConfig{Registry: reg, Stdout: &out}, "init")
	if res.ExitStatus != 5 || out.String() != "from child\n" {
		t.Fatalf("boot: status=%d out=%q", res.ExitStatus, out.String())
	}
}

func TestFacadeDeterministicScheduler(t *testing.T) {
	res := Run(Options{Kernel: MachineConfig{CPUsPerNode: 2}}, func(rt *RT) uint64 {
		s := NewSched(rt, 1000)
		mu := s.NewMutex()
		counter := rt.Alloc(4, 4)
		if err := s.Run(3, func(th *SchedThread) {
			for i := 0; i < 10; i++ {
				th.Lock(mu)
				v := th.Env().ReadU32(counter)
				th.Env().WriteU32(counter, v+1)
				th.Unlock(mu)
			}
		}); err != nil {
			panic(err)
		}
		return uint64(rt.Env().ReadU32(counter))
	})
	if res.Err != nil || res.Ret != 30 {
		t.Fatalf("dsched facade: ret=%d err=%v", res.Ret, res.Err)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	prog := func(env *Env) {
		v := env.RandUint64() ^ uint64(env.ClockNow())
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		env.ConsoleWrite(buf[:])
	}
	cfg := MachineConfig{Rand: kernel.SeededRand(12345)}
	log := RecordTrace(&cfg)
	var out1 bytes.Buffer
	cfg.Console = kernel.NewConsole(strings.NewReader(""), &out1)
	NewMachine(cfg).Run(prog, 0)

	blob, err := log.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	var cfg2 MachineConfig
	ReplayTrace(&cfg2, restored)
	var out2 bytes.Buffer
	cfg2.Console = kernel.NewConsole(restored.ReplayInput(), &out2)
	NewMachine(cfg2).Run(prog, 0)

	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("replay diverged")
	}
}

// TestWholeSystemDeterminism runs a mixed workload (threads + processes
// + files + scheduler) several times and demands bit-identical outcomes:
// the paper's core claim, end to end.
func TestWholeSystemDeterminism(t *testing.T) {
	run := func() (uint64, int64, string) {
		var fileState string
		reg := NewRegistry()
		reg.Register("init", func(p *Proc) int {
			for i := 0; i < 3; i++ {
				i := i
				p.Fork(func(c *Proc) int {
					name := string(rune('a' + i))
					c.FS().WriteFile(name, []byte(strings.Repeat(name, i+1)))
					c.ConsoleWrite([]byte(name))
					return i
				})
			}
			sum := 0
			for i := 0; i < 3; i++ {
				_, status, _, err := p.Wait()
				if err != nil {
					panic(err)
				}
				sum += status
			}
			var sb strings.Builder
			for _, info := range p.FS().List() {
				data, _ := p.FS().ReadFile(info.Name)
				sb.WriteString(info.Name + "=" + string(data) + ";")
			}
			fileState = sb.String()
			return sum
		})
		var out bytes.Buffer
		res := Boot(BootConfig{Registry: reg, Stdout: &out, Kernel: MachineConfig{CPUsPerNode: 4}}, "init")
		return uint64(res.ExitStatus), res.Run.VT, fileState + "|" + out.String()
	}
	s1, vt1, state1 := run()
	for i := 0; i < 4; i++ {
		s, vt, state := run()
		if s != s1 || vt != vt1 || state != state1 {
			t.Fatalf("run %d diverged:\n%d %d %q\nvs\n%d %d %q", i, s, vt, state, s1, vt1, state1)
		}
	}
}
