package repro

// Store-backed checkpoints: SaveTo/ResumeFrom and the Manifest chain.
//
// Image.Bytes is the flat, single-blob form of a checkpoint. This file
// is the chunked form: the image's kernel section is split into its
// small metadata and its large vm forest (kernel.SplitImage), the
// forest is transcoded into content-addressed chunks (vm.ChunkForest),
// and a Manifest — a small CRC-framed root object — ties together the
// forest root, the session metadata and the previous manifest of the
// chain. Because the chunk layer is an exact transcoding, an image
// loaded back from a store is byte-identical to the image that was
// saved, and a resume from a store is bit-identical to a resume from
// the flat form.
//
// Chaining: each SaveTo links the new manifest to the session's
// previous one, and the forest root delta-encodes against the parent's.
// A checkpoint that touched k pages since the previous one therefore
// stores O(k) new chunk bytes, and collecting garbage with only the
// newest manifest as root keeps every ancestor chunk the chain still
// needs (manifests and forest roots reference their parents as node
// children, so reachability covers the chain).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/castore"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// manifestMagic opens a manifest node's payload, distinguishing it from
// the other node kinds (forest roots) sharing a store.
const manifestMagic = "DMAN"

// ManifestVersion is the current manifest payload version.
const ManifestVersion = 1

// ManifestError reports a structurally invalid manifest.
type ManifestError struct {
	Msg string
}

func (e *ManifestError) Error() string { return "repro: bad manifest: " + e.Msg }

// Manifest is the root object of one store-backed checkpoint: a small
// CRC-framed node referencing the image's chunked forest, its session
// metadata chunk, and (for incremental checkpoints) the parent
// manifest. Manifests are immutable values; persist one with Bytes
// (e.g. as a MANIFEST file beside a DirStore) and reload it with
// DecodeManifest or LoadManifest.
type Manifest struct {
	key    castore.Key
	forest castore.Key // root node of the chunked vm forest
	meta   castore.Key // session metadata leaf (flat Image with split kernel)
	parent castore.Key // previous manifest in the chain (zero when none)
	seq    uint64
	raw    []byte
}

// Key returns the manifest's content key — its identity in the store
// and the root to pass to CollectChunks.
func (m *Manifest) Key() ChunkKey { return m.key }

// Seq is the manifest's position in its chain (0 for a chain head).
func (m *Manifest) Seq() uint64 { return m.seq }

// Parent returns the previous manifest's key and whether one exists.
func (m *Manifest) Parent() (ChunkKey, bool) { return m.parent, !m.parent.IsZero() }

// Bytes returns the manifest's framed, CRC-guarded serialization —
// exactly the bytes stored under Key.
func (m *Manifest) Bytes() []byte { return append([]byte(nil), m.raw...) }

// DecodeManifest parses a serialized manifest, verifying its framing
// and CRC. Truncated or damaged input returns *ManifestError (via the
// node layer) or *ManifestError directly for structural problems.
func DecodeManifest(b []byte) (*Manifest, error) {
	node, err := castore.ParseNode(b)
	if err != nil {
		return nil, &ManifestError{Msg: err.Error()}
	}
	return manifestFromNode(castore.KeyOf(b), node, b)
}

// LoadManifest fetches and decodes the manifest stored under key.
func LoadManifest(store BlobStore, key ChunkKey) (*Manifest, error) {
	b, err := store.Get(key)
	if err != nil {
		return nil, err
	}
	return DecodeManifest(b)
}

// manifestFromNode validates a parsed node as a manifest.
func manifestFromNode(key castore.Key, node *castore.Node, raw []byte) (*Manifest, error) {
	p := node.Payload
	if len(p) != 4+1+8+1 {
		return nil, &ManifestError{Msg: fmt.Sprintf("payload is %d bytes", len(p))}
	}
	if string(p[:4]) != manifestMagic {
		return nil, &ManifestError{Msg: "not a manifest object"}
	}
	if p[4] != ManifestVersion {
		return nil, &ManifestError{Msg: fmt.Sprintf("version %d not supported (max %d)", p[4], ManifestVersion)}
	}
	m := &Manifest{key: key, seq: binary.LittleEndian.Uint64(p[5:]), raw: append([]byte(nil), raw...)}
	hasParent := p[13] != 0
	wantRefs := 1
	if hasParent {
		wantRefs = 2
	}
	if len(node.NodeRefs) != wantRefs || len(node.LeafRefs) != 1 {
		return nil, &ManifestError{Msg: fmt.Sprintf("reference shape %d/%d, want %d/1",
			len(node.NodeRefs), len(node.LeafRefs), wantRefs)}
	}
	m.forest = node.NodeRefs[0]
	if hasParent {
		m.parent = node.NodeRefs[1]
	}
	m.meta = node.LeafRefs[0]
	return m, nil
}

// SaveImage writes one checkpoint image into a content-addressed store
// and returns its manifest. With a non-nil parent (an earlier manifest
// in the same store), pages and tables unchanged since the parent are
// not re-stored and the new root delta-encodes against the parent's —
// the incremental form SaveTo chains automatically.
func SaveImage(store BlobStore, img *Image, parent *Manifest) (*Manifest, error) {
	kmeta, forest, err := kernel.SplitImage(img.Kernel)
	if err != nil {
		return nil, err
	}
	var parentForest, parentKey castore.Key
	var seq uint64
	if parent != nil {
		parentForest, parentKey = parent.forest, parent.key
		seq = parent.seq + 1
	}
	root, err := vm.ChunkForest(store, forest, parentForest)
	if err != nil {
		return nil, err
	}

	metaImg := *img
	metaImg.Kernel = kmeta
	metaBytes, err := metaImg.Bytes()
	if err != nil {
		return nil, err
	}
	metaKey := castore.KeyOf(metaBytes)
	if err := store.Put(metaKey, metaBytes); err != nil {
		return nil, err
	}

	payload := make([]byte, 0, 4+1+8+1)
	payload = append(payload, manifestMagic...)
	payload = append(payload, ManifestVersion)
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	nodeRefs := []castore.Key{root}
	if parent != nil {
		payload = append(payload, 1)
		nodeRefs = append(nodeRefs, parentKey)
	} else {
		payload = append(payload, 0)
	}
	raw := castore.BuildNode(nodeRefs, []castore.Key{metaKey}, payload)
	key := castore.KeyOf(raw)
	if err := store.Put(key, raw); err != nil {
		return nil, err
	}
	return &Manifest{key: key, forest: root, meta: metaKey, parent: parentKey, seq: seq, raw: raw}, nil
}

// LoadImage reassembles the checkpoint image a manifest references.
// The result is byte-identical to the image SaveImage stored: missing
// chunks surface as *ChunkMissingError, damaged ones as
// *ChunkHashError, and structural problems as the owning layer's typed
// image error.
func LoadImage(store BlobStore, m *Manifest) (*Image, error) {
	metaBytes, err := store.Get(m.meta)
	if err != nil {
		return nil, err
	}
	im, err := DecodeImage(metaBytes)
	if err != nil {
		return nil, err
	}
	forest, err := vm.UnchunkForest(store, m.forest)
	if err != nil {
		return nil, err
	}
	full, err := kernel.JoinImage(im.Kernel, forest)
	if err != nil {
		return nil, err
	}
	im.Kernel = full
	return im, nil
}

// SaveTo writes the session's most recent captured checkpoint (the
// resting image of a Quiescent session, or the last CheckpointAfter
// capture) into store and returns its manifest. Successive SaveTo calls
// on one session — and SaveTo after ResumeFrom — chain their manifests,
// so each save stores only chunks new since the previous one. Unlike
// Suspend, SaveTo keeps the checkpoint in memory: the session stays
// steppable without a reload. Calling it mid-run fails with
// *StateError.
func (s *Session) SaveTo(store BlobStore) (*Manifest, error) {
	if err := s.begin("SaveTo", StateIdle, StateQuiescent); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	img := s.current
	if img == nil {
		if n := len(s.checkpoints); n > 0 {
			img = s.checkpoints[n-1]
		}
	}
	if img == nil {
		return nil, &ProgramError{Msg: "SaveTo without a captured checkpoint; use RunToCheckpoint or CheckpointAfter first"}
	}
	m, err := SaveImage(store, img, s.lastManifest)
	if err != nil {
		return nil, err
	}
	s.lastManifest = m
	return m, nil
}

// --- chain-head files ---------------------------------------------------------

// HeadError reports a damaged or dangling chain-head file: truncated or
// unparsable contents, or a head naming a manifest the store does not
// hold or whose framing CRC fails. It distinguishes "the head itself is
// bad" from ordinary I/O errors (which pass through unwrapped).
type HeadError struct {
	Path string // the head file
	Msg  string
	Err  error // underlying cause, when one exists
}

func (e *HeadError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("repro: bad chain head %s: %s: %v", e.Path, e.Msg, e.Err)
	}
	return fmt.Sprintf("repro: bad chain head %s: %s", e.Path, e.Msg)
}

func (e *HeadError) Unwrap() error { return e.Err }

// WriteManifestHead records m's key in the head file at path
// atomically: the key is written to a temporary file in the same
// directory and renamed into place (the castore.DirStore pattern), so a
// crashed writer leaves either the old head or the new one — never a
// truncated file under the real name.
func WriteManifestHead(path string, m *Manifest) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".head-*")
	if err != nil {
		return fmt.Errorf("repro: write chain head %s: %w", path, err)
	}
	if _, err := tmp.WriteString(m.Key().String() + "\n"); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("repro: write chain head %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("repro: write chain head %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("repro: write chain head %s: %w", path, err)
	}
	return nil
}

// ReadManifestHead reads the chain-head key recorded at path and loads
// the manifest it names from store, verifying the manifest's framing
// and CRC. A truncated or unparsable head, a head naming an absent
// manifest, or a manifest failing its CRC all return *HeadError — the
// caller can tell a rotten head apart from a merely missing one
// (os.IsNotExist on the passed-through open error).
func ReadManifestHead(store BlobStore, path string) (*Manifest, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	key, err := castore.ParseKey(strings.TrimSpace(string(text)))
	if err != nil {
		return nil, &HeadError{Path: path, Msg: "unparsable manifest key", Err: err}
	}
	b, err := store.Get(key)
	if err != nil {
		var miss *ChunkMissingError
		if errors.As(err, &miss) {
			return nil, &HeadError{Path: path, Msg: "head names a manifest the store does not hold", Err: err}
		}
		return nil, err
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, &HeadError{Path: path, Msg: "manifest fails validation", Err: err}
	}
	return m, nil
}

// ResumeFrom loads the checkpoint m references from store and resumes
// p from it — the store-backed form of Resume, with the same
// bit-identical continuation guarantee. The loaded manifest becomes
// the session's chain parent, so a later SaveTo stores an incremental
// checkpoint on top of m.
//
// Deprecation note: ResumeFrom runs the checkpoint to completion in one
// call; BindSuspended/Step is the incremental form the serving fabric
// uses, with the same store-backed chaining.
func (s *Session) ResumeFrom(store BlobStore, m *Manifest, p Program) (RunResult, error) {
	img, err := LoadImage(store, m)
	if err != nil {
		return RunResult{}, err
	}
	if err := s.beginUnbound("ResumeFrom", StateIdle, StateQuiescent); err != nil {
		return RunResult{}, err
	}
	defer s.mu.Unlock()
	s.lastManifest = m
	res, err := s.runPhased(p, img, 0, false)
	if err == nil {
		s.state = StateIdle
		s.current = nil
	}
	return res, err
}
