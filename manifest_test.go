package repro

import (
	"bytes"
	"errors"
	"testing"
)

// sparseProgram writes every page once in phase 0, then touches only
// dirtyPages of them (salted with salt) in each later phase — the
// low-dirty-fraction shape incremental checkpoints are built for.
func sparseProgram(phases, pages, dirtyPages int, salt uint64) Program {
	var arr Addr
	return Program{
		Phases: phases,
		Layout: func(rt *RT) {
			arr = rt.Alloc(uint64(pages*4096), 4096)
		},
		Init: func(rt *RT) {},
		Phase: func(rt *RT, p int) error {
			_, err := rt.ParallelDo(2, func(t *Thread) uint64 {
				lo, hi := t.ID*pages/2, (t.ID+1)*pages/2
				if p > 0 {
					lo, hi = t.ID*dirtyPages/2, (t.ID+1)*dirtyPages/2
				}
				for i := lo; i < hi; i++ {
					a := arr + Addr(i*4096)
					v := t.Env().ReadU64(a)*6364136223846793005 + uint64(i)*2654435761 + uint64(p) + salt + 1
					t.Env().WriteU64(a, v)
				}
				return 0
			})
			return err
		},
		Result: func(rt *RT) uint64 {
			var h uint64 = 1
			for i := 0; i < pages; i++ {
				h = h*1099511628211 + rt.Env().ReadU64(arr+Addr(i*4096))
			}
			return h
		},
	}
}

func TestSaveToResumeFromBothBackends(t *testing.T) {
	p := sparseProgram(3, 64, 4, 0)
	opts := []SessionOption{WithMachine(MachineConfig{CPUsPerNode: 2, MergeWorkers: 1})}
	res, err := mustSession(t, opts...).RunProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	want := keyOf(res, err)

	dir, err := OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, store := range map[string]BlobStore{"mem": NewMemStore(), "dir": dir} {
		sess := mustSession(t, opts...)
		if _, err := sess.RunToCheckpoint(p, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := sess.SaveTo(store)
		if err != nil {
			t.Fatalf("%s: SaveTo: %v", name, err)
		}
		// A fresh process: reload the manifest from its bytes and resume.
		m2, err := DecodeManifest(m.Bytes())
		if err != nil {
			t.Fatalf("%s: DecodeManifest: %v", name, err)
		}
		if m2.Key() != m.Key() {
			t.Fatalf("%s: manifest key changed across serialization", name)
		}
		res, rerr := mustSession(t, opts...).ResumeFrom(store, m2, p)
		if got := keyOf(res, rerr); got != want {
			t.Fatalf("%s: store-backed resume diverged:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestSaveToWithoutCheckpointFailsTyped(t *testing.T) {
	sess := mustSession(t)
	if _, err := sess.SaveTo(NewMemStore()); !errors.As(err, new(*ProgramError)) {
		t.Fatalf("SaveTo on an empty session: %v, want ProgramError", err)
	}
}

func TestManifestChainStoresIncrementally(t *testing.T) {
	// Checkpoint after phase 1 (all 256 pages fresh), save, keep running
	// to phase 2 (4 pages dirtied), save again on the same session: the
	// second save must chain on the first and store far fewer bytes.
	p := sparseProgram(3, 256, 4, 0)
	opts := []SessionOption{
		WithMachine(MachineConfig{CPUsPerNode: 2, MergeWorkers: 1}),
		WithCheckpointAfter(1, 2),
	}
	store := NewMemStore()

	sess := mustSession(t, opts...)
	if _, err := sess.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	cks := sess.Checkpoints()
	if len(cks) != 2 {
		t.Fatalf("captured %d checkpoints, want 2", len(cks))
	}
	m1, err := SaveImage(store, cks[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SaveImage(store, cks[1], m1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}

	if pk, ok := m2.Parent(); !ok || pk != m1.Key() {
		t.Fatalf("second manifest parent = %v/%v, want %s", pk, ok, m1.Key())
	}
	if m2.Seq() != m1.Seq()+1 {
		t.Fatalf("chain seq %d after %d", m2.Seq(), m1.Seq())
	}
	delta := s2.StoredSize - s1.StoredSize
	if delta*10 >= s1.StoredSize {
		t.Fatalf("incremental save stored %d of %d bytes (>= 10%%)", delta, s1.StoredSize)
	}

	// The chained image loads byte-identically to its flat form.
	img, err := LoadImage(store, m2)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := cks[1].Bytes()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("chained image differs from its flat form")
	}
}

// reachableChunks walks a manifest chain and returns every key it can
// reach, using only the public store API (Has is enough: Collect on a
// copy would also work, but this keeps the store intact).
func reachableChunks(t *testing.T, store ChunkStore, root ChunkKey) map[ChunkKey]bool {
	t.Helper()
	// Collect against a scratch copy: everything surviving is reachable.
	scratch := NewMemStore()
	err := store.Keys(func(k ChunkKey, _ BlobInfo) error {
		b, err := store.Get(k)
		if err != nil {
			return err
		}
		return scratch.Put(k, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectChunks(scratch, root); err != nil {
		t.Fatal(err)
	}
	live := make(map[ChunkKey]bool)
	if err := scratch.Keys(func(k ChunkKey, _ BlobInfo) error { live[k] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	return live
}

func TestSiblingSessionsShareChunks(t *testing.T) {
	// Two sessions resume from one parent manifest, diverge on a few
	// pages (different salts), and save. At low dirty fractions their
	// images must share well over half their chunks.
	const pages, dirty = 256, 4
	opts := []SessionOption{
		WithMachine(MachineConfig{CPUsPerNode: 2, MergeWorkers: 1}),
		WithCheckpointAfter(2),
	}
	store := NewMemStore()

	parent := mustSession(t, opts...)
	if _, err := parent.RunToCheckpoint(sparseProgram(3, pages, dirty, 0), 1); err != nil {
		t.Fatal(err)
	}
	m0, err := parent.SaveTo(store)
	if err != nil {
		t.Fatal(err)
	}

	var siblings []*Manifest
	for _, salt := range []uint64{0x1000000, 0x2000000} {
		sess := mustSession(t, opts...)
		if _, err := sess.ResumeFrom(store, m0, sparseProgram(3, pages, dirty, salt)); err != nil {
			t.Fatal(err)
		}
		m, err := sess.SaveTo(store)
		if err != nil {
			t.Fatal(err)
		}
		if pk, ok := m.Parent(); !ok || pk != m0.Key() {
			t.Fatalf("sibling did not chain on the parent manifest (%v, %v)", pk, ok)
		}
		siblings = append(siblings, m)
	}

	a := reachableChunks(t, store, siblings[0].Key())
	b := reachableChunks(t, store, siblings[1].Key())
	shared := 0
	for k := range a {
		if b[k] {
			shared++
		}
	}
	union := len(a) + len(b) - shared
	if shared*2 <= union {
		t.Fatalf("siblings share %d of %d chunks (<= 50%%)", shared, union)
	}
}

func TestCollectKeepsSurvivingChains(t *testing.T) {
	const pages, dirty = 128, 4
	opts := []SessionOption{
		WithMachine(MachineConfig{CPUsPerNode: 2, MergeWorkers: 1}),
		WithCheckpointAfter(2),
	}
	store := NewMemStore()
	p := sparseProgram(3, pages, dirty, 0)

	parent := mustSession(t, opts...)
	if _, err := parent.RunToCheckpoint(p, 1); err != nil {
		t.Fatal(err)
	}
	m0, err := parent.SaveTo(store)
	if err != nil {
		t.Fatal(err)
	}
	// Two divergent children chained on m0.
	var kids []*Manifest
	for _, salt := range []uint64{7, 9} {
		sess := mustSession(t, opts...)
		if _, err := sess.ResumeFrom(store, m0, sparseProgram(3, pages, dirty, salt)); err != nil {
			t.Fatal(err)
		}
		m, err := sess.SaveTo(store)
		if err != nil {
			t.Fatal(err)
		}
		kids = append(kids, m)
	}

	// Drop the first child's chain: the second chain (and, through its
	// parent refs, m0) must survive and still load bit-identically.
	keepImg, err := LoadImage(store, kids[1])
	if err != nil {
		t.Fatal(err)
	}
	keepBytes, err := keepImg.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	st, err := CollectChunks(store, kids[1].Key())
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed == 0 {
		t.Fatal("dropping a sibling chain reclaimed nothing")
	}
	for _, m := range []*Manifest{m0, kids[1]} {
		img, err := LoadImage(store, m)
		if err != nil {
			t.Fatalf("GC broke surviving manifest %s: %v", m.Key(), err)
		}
		if m == kids[1] {
			got, err := img.Bytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, keepBytes) {
				t.Fatal("surviving image changed across GC")
			}
		}
	}
	if _, err := LoadImage(store, kids[0]); !errors.As(err, new(*ChunkMissingError)) {
		t.Fatalf("collected manifest still loads: %v", err)
	}

	// Collecting with no roots empties the store.
	if _, err := CollectChunks(store); err != nil {
		t.Fatal(err)
	}
	final, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if final.Chunks != 0 {
		t.Fatalf("%d chunks survived a rootless collect", final.Chunks)
	}
}

func TestManifestAndChunkCorruptionRejected(t *testing.T) {
	p := sparseProgram(2, 32, 4, 0)
	opts := []SessionOption{WithMachine(MachineConfig{CPUsPerNode: 2, MergeWorkers: 1})}
	sess := mustSession(t, opts...)
	if _, err := sess.RunToCheckpoint(p, 1); err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	m, err := sess.SaveTo(store)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated and bit-flipped manifest bytes fail typed.
	raw := m.Bytes()
	if _, err := DecodeManifest(raw[:len(raw)/2]); !errors.As(err, new(*ManifestError)) {
		t.Fatalf("truncated manifest: %v, want ManifestError", err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x20
	if _, err := DecodeManifest(flipped); !errors.As(err, new(*ManifestError)) {
		t.Fatalf("flipped manifest: %v, want ManifestError", err)
	}
	// A non-manifest node (the forest root) is rejected as a manifest.
	forestRaw, err := store.Get(m.forest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(forestRaw); !errors.As(err, new(*ManifestError)) {
		t.Fatalf("forest root as manifest: %v, want ManifestError", err)
	}

	// Deleting any referenced chunk makes LoadImage fail ChunkMissing;
	// corrupting one fails ChunkHash.
	victim := m.meta
	saved, err := store.Get(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImage(store, m); !errors.As(err, new(*ChunkMissingError)) {
		t.Fatalf("missing metadata chunk: %v, want ChunkMissingError", err)
	}
	if err := store.Put(victim, saved); err != nil {
		t.Fatal(err)
	}
	store.Corrupt(m.forest, []byte{'R', 0xde, 0xad})
	if _, err := LoadImage(store, m); !errors.As(err, new(*ChunkHashError)) {
		t.Fatalf("corrupt forest root: %v, want ChunkHashError", err)
	}
}
