// Checkpoint/resume walkthrough: a phased parallel program runs half
// way, serializes the whole machine to bytes at a barrier, and a
// completely fresh session — in a real deployment, a fresh process —
// resumes it to a bit-identical result.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	repro "repro"
)

const (
	threads = 4
	phases  = 6
	words   = 1 << 14
)

// program is a phased map/reduce: every phase each thread perturbs its
// stripe of a shared array, and a running digest accumulates the
// per-thread sums. All cross-phase state lives in the shared region, so
// the program is checkpointable at every phase barrier. Layout re-runs
// on resume to re-derive the addresses; Init runs only on fresh starts.
func program() (repro.Program, *repro.Addr) {
	var arr, digest repro.Addr
	p := repro.Program{
		Phases: phases,
		Layout: func(rt *repro.RT) {
			arr = rt.Alloc(8*words, 8)
			digest = rt.Alloc(8, 8)
		},
		Init: func(rt *repro.RT) {
			for i := 0; i < words; i++ {
				rt.Env().WriteU64(arr+repro.Addr(8*i), uint64(i))
			}
			rt.Env().WriteU64(digest, 1)
		},
		Phase: func(rt *repro.RT, phase int) error {
			sums, err := rt.ParallelDo(threads, func(t *repro.Thread) uint64 {
				lo, hi := t.ID*words/threads, (t.ID+1)*words/threads
				var sum uint64
				for i := lo; i < hi; i++ {
					a := arr + repro.Addr(8*i)
					v := t.Env().ReadU64(a)*6364136223846793005 + uint64(phase) + 1
					t.Env().WriteU64(a, v)
					sum += v
				}
				return sum
			})
			if err != nil {
				return err
			}
			h := rt.Env().ReadU64(digest)
			for _, s := range sums {
				h = h*31 + s
			}
			rt.Env().WriteU64(digest, h)
			return nil
		},
		Result: func(rt *repro.RT) uint64 { return rt.Env().ReadU64(digest) },
	}
	return p, &digest
}

func main() {
	machine := repro.MachineConfig{CPUsPerNode: threads}

	// Reference: the uninterrupted run.
	ref, err := repro.NewSession(repro.WithMachine(machine))
	if err != nil {
		log.Fatal(err)
	}
	p, _ := program()
	want, err := ref.RunProgram(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted: digest=%#x vt=%d\n", want.Ret, want.VT)

	// Run half the phases and checkpoint the machine to bytes.
	half, err := repro.NewSession(repro.WithMachine(machine))
	if err != nil {
		log.Fatal(err)
	}
	img, err := half.RunToCheckpoint(p, phases/2)
	if err != nil {
		log.Fatal(err)
	}
	data, err := img.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint:    %d bytes after %d phases\n", len(data), phases/2)

	// A fresh session (fresh process, fresh machine) resumes the bytes.
	img2, err := repro.DecodeImage(data)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := repro.NewSession(repro.WithMachine(machine))
	if err != nil {
		log.Fatal(err)
	}
	p2, _ := program() // fresh program value: no Go state crosses over
	got, err := resumed.Resume(img2, p2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed:       digest=%#x vt=%d\n", got.Ret, got.VT)

	if got.Ret != want.Ret || got.VT != want.VT || got.Insns != want.Insns {
		log.Fatal("resumed run diverged from the uninterrupted one")
	}
	fmt.Println("bit-identical: checksum, virtual time and instruction counts all match")
}
