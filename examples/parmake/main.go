// Parmake: the paper's parallel-make scenario (§4.2 and Figure 4) on the
// emulated Unix runtime.
//
// A "makefile" of compile rules runs as forked compiler processes, each
// writing its .o file into its own file system replica; the object files
// merge into the parent at wait time, then a link step combines them.
// The demo then shows the two wait()-semantics effects the paper
// discusses:
//
//   - two rules that write the same output file produce a reliably
//     detected conflict, not a silently clobbered binary;
//   - with a 2-worker quota, Determinator's wait() (earliest-forked,
//     never "first finisher") produces the non-optimal schedule of
//     Figure 4(d), measurably slower in virtual time than 'make -j'.
//
// Run: go run ./examples/parmake
package main

import (
	"fmt"
	"os"
	"strings"

	repro "repro"
	"repro/internal/kernel"
	"repro/internal/uproc"
)

type rule struct {
	src, obj string
	len      int64 // compile "duration" in millions of instructions
}

var rules = []rule{
	{"main.c", "main.o", 3},
	{"util.c", "util.o", 1},
	{"gfx.c", "gfx.o", 2},
}

func main() {
	reg := repro.NewRegistry()
	reg.Register("cc", ccProgram)
	reg.Register("make-j", makeUnlimited)
	reg.Register("make-j2", makeTwoWorkers)
	reg.Register("make-conflict", makeConflict)

	run := func(entry string) (int, string, int64) {
		var out strings.Builder
		res := repro.Boot(repro.BootConfig{
			Kernel:   kernel.Config{CPUsPerNode: 2},
			Registry: reg,
			Stdout:   &out,
		}, entry)
		return res.ExitStatus, out.String(), res.Run.VT
	}

	status, out, vtJ := run("make-j")
	fmt.Print(out)
	if status != 0 {
		fmt.Fprintln(os.Stderr, "make -j failed")
		os.Exit(1)
	}
	fmt.Printf("make -j   (unlimited): makespan %4.1fM instructions\n\n", float64(vtJ)/1e6)

	_, out2, vtJ2 := run("make-j2")
	fmt.Print(out2)
	fmt.Printf("make -j2 (det. wait) : makespan %4.1fM instructions (%.2fx of -j)\n\n",
		float64(vtJ2)/1e6, float64(vtJ2)/float64(vtJ))
	fmt.Println("wait() returns the earliest-forked child, so -j2 cannot react to the short")
	fmt.Println("compile finishing first — Figure 4(d). The paper's advice: use plain 'make -j'.")

	_, out3, _ := run("make-conflict")
	fmt.Println()
	fmt.Print(out3)
}

// ccProgram simulates a compiler: read the source, "compile" for the
// requested duration, write the object file.
func ccProgram(p *uproc.Proc) int {
	args := p.Args() // cc SRC OBJ LEN
	if len(args) != 4 {
		p.ConsoleWrite([]byte("cc: bad usage\n"))
		return 2
	}
	src, err := p.FS().ReadFile(args[1])
	if err != nil {
		p.ConsoleWrite([]byte("cc: " + err.Error() + "\n"))
		return 1
	}
	var units int64
	fmt.Sscan(args[3], &units)
	p.Env().Tick(units * 1_000_000)
	obj := fmt.Sprintf("ELF{%s: %d bytes compiled}", args[1], len(src))
	if err := p.FS().WriteFile(args[2], []byte(obj)); err != nil {
		p.ConsoleWrite([]byte("cc: " + err.Error() + "\n"))
		return 1
	}
	p.ConsoleWrite([]byte("CC " + args[2] + "\n"))
	return 0
}

// prepareSources writes the "source tree" into the build's file system.
func prepareSources(p *uproc.Proc) {
	for _, r := range rules {
		if err := p.FS().WriteFile(r.src, []byte("int code_"+r.src+";\n")); err != nil {
			panic(err)
		}
	}
}

// link concatenates the objects, verifying they all arrived.
func link(p *uproc.Proc) int {
	var bin strings.Builder
	for _, r := range rules {
		obj, err := p.FS().ReadFile(r.obj)
		if err != nil {
			p.ConsoleWrite([]byte("ld: missing " + r.obj + "\n"))
			return 1
		}
		bin.Write(obj)
		bin.WriteByte('\n')
	}
	if err := p.FS().WriteFile("a.out", []byte(bin.String())); err != nil {
		return 1
	}
	p.ConsoleWrite([]byte("LD a.out\n"))
	return 0
}

func fork(p *uproc.Proc, r rule) int {
	pid, err := p.ForkExec("cc", r.src, r.obj, fmt.Sprint(r.len))
	if err != nil {
		panic(err)
	}
	return pid
}

// makeUnlimited is 'make -j': all rules at once, join all.
func makeUnlimited(p *uproc.Proc) int {
	prepareSources(p)
	var pids []int
	for _, r := range rules {
		pids = append(pids, fork(p, r))
	}
	for _, pid := range pids {
		if _, conflicts, err := p.Waitpid(pid); err != nil || len(conflicts) > 0 {
			return 1
		}
	}
	return link(p)
}

// makeTwoWorkers is 'make -j2': at most two outstanding compiles, using
// wait() to reclaim a slot — which on Determinator reports the
// earliest-forked child, not the first finisher.
func makeTwoWorkers(p *uproc.Proc) int {
	prepareSources(p)
	fork(p, rules[0])
	fork(p, rules[1])
	if _, _, _, err := p.Wait(); err != nil { // earliest-forked: the long compile
		return 1
	}
	fork(p, rules[2])
	for {
		if _, _, _, err := p.Wait(); err != nil {
			break
		}
	}
	return link(p)
}

// makeConflict runs two rules that both write main.o: a build-system bug
// the runtime converts into a deterministic, visible conflict.
func makeConflict(p *uproc.Proc) int {
	prepareSources(p)
	a, _ := p.ForkExec("cc", "main.c", "main.o", "1")
	b, _ := p.ForkExec("cc", "util.c", "main.o", "1")
	p.Waitpid(a)
	_, conflicts, _ := p.Waitpid(b)
	if len(conflicts) == 1 {
		p.ConsoleWrite([]byte("build bug detected: both rules wrote " + conflicts[0].Name +
			" — conflict flagged, later opens fail until rebuilt\n"))
		return 0
	}
	p.ConsoleWrite([]byte("BUG: duplicate-output conflict was not detected\n"))
	return 1
}
