// Parmake: the paper's parallel-make scenario (§4.2) on the detmake
// build executor.
//
// The same three compile rules that used to be hand-rolled over forked
// processes are now a declared DAG: each cc rule runs hermetically in
// its own space over a private file-system image seeing only its
// declared source, the object files merge back at the wave boundary,
// and the link step concatenates them. On top of what the hand-rolled
// version showed, the executor adds the paper's punchline: because
// every task's output bits are a pure function of its inputs, results
// are cacheable by construction — the second build is pure cache hits
// and bit-identical, asserted here.
//
// The duplicate-output build bug from the original demo is still a
// reliably detected, deterministic conflict — now caught as a typed
// error when the graph is declared, before anything runs.
//
// Run: go run ./examples/parmake
package main

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/castore"
	"repro/internal/detmake"
)

type rule struct {
	src, obj string
	len      int64 // compile "duration" in millions of instructions
}

var rules = []rule{
	{"main.c", "main.o", 3},
	{"util.c", "util.o", 1},
	{"gfx.c", "gfx.o", 2},
}

func main() {
	actions := detmake.NewActions()
	actions.Register("cc", ccAction)
	actions.Register("link", linkAction)

	sources := map[string][]byte{}
	var tasks []*detmake.Task
	var objs []string
	for _, r := range rules {
		sources[r.src] = []byte("int code_" + r.src + ";\n")
		tasks = append(tasks, &detmake.Task{
			ID: "cc-" + r.obj, Action: "cc", Args: []string{fmt.Sprint(r.len)},
			Inputs: []string{r.src}, Outputs: []string{r.obj},
		})
		objs = append(objs, r.obj)
	}
	tasks = append(tasks, &detmake.Task{
		ID: "link", Action: "link", Inputs: objs, Outputs: []string{"a.out"},
	})
	g, err := detmake.NewGraph(tasks)
	if err != nil {
		fatal(err)
	}

	store := castore.NewMemStore()
	idx := detmake.NewMemIndex()
	build := func() detmake.Result {
		res, err := detmake.Build(detmake.Config{
			Graph: g, Actions: actions, Sources: sources, Store: store, Index: idx,
		})
		if err != nil {
			fatal(err)
		}
		for _, tr := range res.Tasks {
			verb := "CC"
			if tr.ID == "link" {
				verb = "LD"
			}
			if tr.CacheHit {
				verb = "HIT"
			}
			fmt.Printf("%-3s %s\n", verb, tr.ID)
		}
		return res
	}

	fmt.Println("cold build (every rule compiles in its own private space):")
	cold := build()
	fmt.Printf("makespan %4.1fM instructions\n\n", float64(cold.VT)/1e6)

	// The hand-rolled version asserted this exact binary; it must come
	// out of the DAG executor byte-identical.
	want := ""
	for _, r := range rules {
		want += fmt.Sprintf("ELF{%s: %d bytes compiled}\n", r.src, len(sources[r.src]))
	}
	if string(cold.Outputs["a.out"]) != want {
		fatal(fmt.Errorf("a.out = %q, want %q", cold.Outputs["a.out"], want))
	}
	fmt.Print("a.out:\n" + want + "\n")

	fmt.Println("warm build (same inputs, so every result fetches from the cache):")
	warm := build()
	if warm.Stats.CacheHits != len(tasks) || warm.TreeDigest != cold.TreeDigest ||
		warm.Checksum != cold.Checksum {
		fatal(fmt.Errorf("warm build not a bit-identical full cache hit: %+v", warm.Stats))
	}
	fmt.Printf("%d/%d cache hits, tree and image checksum bit-identical to cold\n\n",
		warm.Stats.CacheHits, len(tasks))

	// The build bug: two rules that write the same output file. The
	// executor rejects the graph with deterministic attribution instead
	// of letting one rule silently clobber the other.
	_, err = detmake.NewGraph([]*detmake.Task{
		{ID: "cc-main", Action: "cc", Args: []string{"1"}, Inputs: []string{"main.c"}, Outputs: []string{"main.o"}},
		{ID: "cc-util", Action: "cc", Args: []string{"1"}, Inputs: []string{"util.c"}, Outputs: []string{"main.o"}},
	})
	var dup *detmake.DuplicateOutputError
	if !errors.As(err, &dup) {
		fatal(fmt.Errorf("duplicate-output bug was not detected: %v", err))
	}
	fmt.Printf("build bug detected: tasks %s and %s both declare %s — conflict reported, nothing runs\n",
		dup.Tasks[0], dup.Tasks[1], dup.Path)
}

// ccAction simulates a compiler: read the one declared source,
// "compile" for the requested duration, write the object file.
func ccAction(c *detmake.TaskCtx) error {
	src := c.Inputs()[0]
	b, err := c.ReadFile(src)
	if err != nil {
		return err
	}
	var units int64
	fmt.Sscan(c.Args()[0], &units)
	c.Tick(units * 1_000_000)
	return c.WriteFile(c.Outputs()[0], []byte(fmt.Sprintf("ELF{%s: %d bytes compiled}", src, len(b))))
}

// linkAction concatenates the objects with newlines, as the original
// example's link step did.
func linkAction(c *detmake.TaskCtx) error {
	var bin []byte
	for _, obj := range c.Inputs() {
		b, err := c.ReadFile(obj)
		if err != nil {
			return err
		}
		bin = append(bin, b...)
		bin = append(bin, '\n')
	}
	c.Tick(int64(len(bin)))
	return c.WriteFile(c.Outputs()[0], bin)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parmake:", err)
	os.Exit(1)
}
