// Legacy: running unmodified lock-based code deterministically (§4.5).
//
// A classic producer/consumer job queue written with mutexes and
// condition variables — the kind of code the private workspace model
// deliberately excludes — runs under Determinator's deterministic
// scheduler: quantized execution, last-writer-wins quantum commits, and
// mutex ownership stealing. The program is racy by construction (workers
// contend for jobs), yet every run produces the identical job
// assignment, because "time" is an instruction count, not a wall clock.
//
// Run: go run ./examples/legacy
package main

import (
	"fmt"
	"os"

	repro "repro"
)

const (
	nWorkers = 3
	nJobs    = 12
)

func main() {
	assignment1 := run()
	assignment2 := run()
	fmt.Println("job -> worker assignments under the deterministic scheduler:")
	fmt.Printf("  run 1: %v\n", assignment1)
	fmt.Printf("  run 2: %v\n", assignment2)
	if fmt.Sprint(assignment1) != fmt.Sprint(assignment2) {
		fmt.Println("DIVERGED — this should be impossible")
		os.Exit(1)
	}
	fmt.Println("identical: lock acquisition order is repeatable, run after run.")
	fmt.Println("(On a conventional OS this assignment would vary with scheduling noise.)")
}

// run executes the job queue once and returns which worker took each job.
func run() []uint32 {
	var got []uint32
	res := repro.Run(repro.Options{Kernel: repro.MachineConfig{CPUsPerNode: 4}}, func(rt *repro.RT) uint64 {
		s := repro.NewSched(rt, 2_000) // small quantum: plenty of preemption
		mu := s.NewMutex()
		env := rt.Env()

		next := rt.Alloc(8, 8)            // next job index (mutex-protected)
		owners := rt.Alloc(4*nJobs, 4)    // job -> worker id + 1
		counts := rt.Alloc(4*nWorkers, 4) // jobs per worker
		env.WriteU64(next, 0)

		if err := s.Run(nWorkers, func(th *repro.SchedThread) {
			for {
				// Take a job under the lock.
				th.Lock(repro.Mutex(mu))
				job := th.Env().ReadU64(next)
				if job >= nJobs {
					th.Unlock(repro.Mutex(mu))
					return
				}
				th.Env().WriteU64(next, job+1)
				th.Env().WriteU32(owners+repro.Addr(4*job), uint32(th.ID+1))
				th.Unlock(repro.Mutex(mu))

				// "Process" the job: workers are deliberately uneven so a
				// real-time scheduler would interleave them unpredictably.
				th.Env().Tick(int64(500 * (th.ID + 1)))
				c := th.Env().ReadU32(counts + repro.Addr(4*th.ID))
				th.Env().WriteU32(counts+repro.Addr(4*th.ID), c+1)
			}
		}); err != nil {
			panic(err)
		}

		got = make([]uint32, nJobs)
		env.ReadU32s(owners, got)
		var sig uint64
		for _, v := range got {
			sig = sig*31 + uint64(v)
		}
		return sig
	})
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", res.Err)
		os.Exit(1)
	}
	return got
}
