// Actors: the paper's Figure 1 — a lock-step time-step simulation (a
// game, a particle system) where the main thread forks one child per
// actor each step; every child examines the state of nearby actors and
// updates its own actor in place.
//
// Under conventional threads this has a read/write race: a child might
// see an arbitrary mix of old and new neighbour states. Under the
// private workspace model every child reads its own pre-fork replica,
// so the program below is exactly the paper's pseudocode, race-free,
// with no copying or extra synchronization.
//
// The simulation here is a ring of cellular "actors" following a
// parity automaton; after every step the program verifies against a
// sequential reference.
//
// Run: go run ./examples/actors
package main

import (
	"fmt"
	"os"

	repro "repro"
)

const (
	nactors = 32
	steps   = 8
)

func main() {
	res := repro.Run(repro.Options{Kernel: repro.MachineConfig{CPUsPerNode: 4}}, simulate)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "machine stopped:", res.Err)
		os.Exit(1)
	}
	if res.Ret != 1 {
		fmt.Fprintln(os.Stderr, "simulation diverged from the sequential reference")
		os.Exit(1)
	}
	fmt.Println("parallel simulation matched the sequential reference at every step")
}

func simulate(rt *repro.RT) uint64 {
	env := rt.Env()
	actors := rt.Alloc(4*nactors, 4)

	state := make([]uint32, nactors)
	for i := range state {
		state[i] = uint32(i % 5)
	}
	env.WriteU32s(actors, state)
	ref := append([]uint32(nil), state...)

	for time := 0; time < steps; time++ {
		// Fork one child per actor (Figure 1's inner loop).
		for i := 0; i < nactors; i++ {
			i := i
			if err := rt.Fork(i, func(t *repro.Thread) uint64 {
				// Examine the state of nearby actors...
				all := make([]uint32, nactors)
				t.Env().ReadU32s(actors, all)
				left := all[(i+nactors-1)%nactors]
				right := all[(i+1)%nactors]
				// ...and update our actor in place, no synchronization.
				t.Env().WriteU32(actors+repro.Addr(4*i), step(left, all[i], right))
				return 0
			}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < nactors; i++ {
			if _, err := rt.Join(i); err != nil {
				panic(err)
			}
		}

		// Sequential reference for the same step.
		next := make([]uint32, nactors)
		for i := range ref {
			next[i] = step(ref[(i+nactors-1)%nactors], ref[i], ref[(i+1)%nactors])
		}
		ref = next

		got := make([]uint32, nactors)
		env.ReadU32s(actors, got)
		line := make([]byte, nactors)
		for i, v := range got {
			if v != ref[i] {
				return 0
			}
			line[i] = " .:*#"[v%5]
		}
		fmt.Printf("t=%2d  %s\n", time+1, line)
	}
	return 1
}

// step is the actor update rule: a small nonlinear mix of the
// neighbourhood, the kind of thing a game would do per entity.
func step(left, self, right uint32) uint32 {
	return (left*3 + self*self + right*7 + 1) % 5
}
