// Replay: record-and-replay of explicit nondeterministic inputs (§2.1).
//
// A program that consumes "wall-clock" time readings, entropy, and
// console input runs once while a supervising recorder logs every
// nondeterministic input at the device boundary. The log is then
// serialized, restored, and the program re-runs with synthesized
// devices: because the kernel eliminates all internal nondeterminism,
// replaying the explicit inputs alone reproduces the run byte for byte
// — the foundation of replay debugging, fault tolerance and intrusion
// analysis that motivates the paper.
//
// Run: go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"time"

	repro "repro"
	"repro/internal/kernel"
)

// program is deliberately "noisy": its output depends on the clock,
// the entropy device, console input, and parallel child results.
func program(env *repro.Env) {
	var out bytes.Buffer
	fmt.Fprintf(&out, "boot at t=%d\n", env.ClockNow())

	// Parallel children whose merged results feed the output.
	for i := uint64(1); i <= 3; i++ {
		seed := env.RandUint64()
		if err := env.Put(i, repro.PutOpts{
			Regs: &repro.Regs{Entry: func(c *repro.Env) {
				v := c.Arg()
				for j := 0; j < 1000; j++ {
					v = v*6364136223846793005 + 1442695040888963407
					c.Tick(3)
				}
				c.SetRet(v)
			}, Arg: seed},
			Start: true,
		}); err != nil {
			panic(err)
		}
	}
	for i := uint64(1); i <= 3; i++ {
		info, err := env.Get(i, repro.GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&out, "worker %d -> %x\n", i, info.Regs.Ret&0xffffff)
	}

	var in [64]byte
	n := env.ConsoleRead(in[:])
	fmt.Fprintf(&out, "stdin said %q at t=%d\n", in[:n], env.ClockNow())
	env.ConsoleWrite(out.Bytes())
}

func main() {
	// --- Recorded run with genuinely nondeterministic devices ----------
	cfg := repro.MachineConfig{
		Clock: func() int64 { return time.Now().UnixNano() },
		Rand:  kernel.SeededRand(uint64(time.Now().UnixNano() | 1)),
	}
	log := repro.RecordTrace(&cfg)
	var out1 bytes.Buffer
	cfg.Console = kernel.NewConsole(log.RecordInput(strings.NewReader("hello from the outside\n")), &out1)
	repro.NewMachine(cfg).Run(program, 0)

	fmt.Println("--- recorded run ---")
	fmt.Print(out1.String())

	blob, err := log.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("--- trace: %d bytes (%d clock readings, %d entropy words, %d input chunks) ---\n",
		len(blob), len(log.Clock), len(log.Rand), len(log.Input))

	// --- Replay from the serialized trace -------------------------------
	restored, err := repro.UnmarshalTrace(blob)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var cfg2 repro.MachineConfig
	repro.ReplayTrace(&cfg2, restored)
	var out2 bytes.Buffer
	cfg2.Console = kernel.NewConsole(restored.ReplayInput(), &out2)
	repro.NewMachine(cfg2).Run(program, 0)

	fmt.Println("--- replayed run ---")
	fmt.Print(out2.String())

	if out1.String() == out2.String() {
		fmt.Println("--- byte-for-byte identical ---")
	} else {
		fmt.Println("--- REPLAY DIVERGED (bug!) ---")
		os.Exit(1)
	}
}
