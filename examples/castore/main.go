// Content-addressed checkpoint store walkthrough: a phased program
// checkpoints into an on-disk chunk store, a fresh session resumes from
// the manifest and saves again, and the second save stores only the
// chunks the run actually changed — a chained incremental image. The
// garbage collector then shows that dropping to a single root keeps the
// whole parent chain reachable.
//
//	go run ./examples/castore
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"
)

const (
	threads = 4
	phases  = 6
	words   = 1 << 14
)

// program is the same phased map/reduce the checkpoint example uses:
// all cross-phase state lives in the shared region, so it can be
// checkpointed (and therefore saved to a store) at every barrier.
func program() repro.Program {
	var arr, digest repro.Addr
	return repro.Program{
		Phases: phases,
		Layout: func(rt *repro.RT) {
			arr = rt.Alloc(8*words, 8)
			digest = rt.Alloc(8, 8)
		},
		Init: func(rt *repro.RT) {
			for i := 0; i < words; i++ {
				rt.Env().WriteU64(arr+repro.Addr(8*i), uint64(i))
			}
			rt.Env().WriteU64(digest, 1)
		},
		Phase: func(rt *repro.RT, phase int) error {
			// The first two phases build the whole array; later phases
			// refine a 1/16th slice — so chained saves after phase 2
			// store only the pages those refinements dirty.
			span := words
			if phase >= 2 {
				span = words / 16
			}
			sums, err := rt.ParallelDo(threads, func(t *repro.Thread) uint64 {
				lo, hi := t.ID*span/threads, (t.ID+1)*span/threads
				var sum uint64
				for i := lo; i < hi; i++ {
					a := arr + repro.Addr(8*i)
					v := t.Env().ReadU64(a)*6364136223846793005 + uint64(phase) + 1
					t.Env().WriteU64(a, v)
					sum += v
				}
				return sum
			})
			if err != nil {
				return err
			}
			h := rt.Env().ReadU64(digest)
			for _, s := range sums {
				h = h*31 + s
			}
			rt.Env().WriteU64(digest, h)
			return nil
		},
		Result: func(rt *repro.RT) uint64 { return rt.Env().ReadU64(digest) },
	}
}

func main() {
	machine := repro.MachineConfig{CPUsPerNode: threads}
	session := func() *repro.Session {
		s, err := repro.NewSession(repro.WithMachine(machine))
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// Reference: the uninterrupted run.
	want, err := session().RunProgram(program())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted: digest=%#x vt=%d\n", want.Ret, want.VT)

	dir, err := os.MkdirTemp("", "castore-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := repro.OpenDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Run a third of the phases and save the machine into the store.
	first := session()
	if _, err := first.RunToCheckpoint(program(), 2); err != nil {
		log.Fatal(err)
	}
	m1, err := first.SaveTo(store)
	if err != nil {
		log.Fatal(err)
	}
	s1, err := store.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("save 1: manifest %s…  %d chunks, %d KiB unique, %d KiB on disk\n",
		m1.Key().String()[:12], s1.Chunks, s1.LogicalSize>>10, s1.StoredSize>>10)

	// A fresh session resumes from the manifest, runs two more phases,
	// and saves again — chained onto the first manifest, so only the
	// pages those phases dirtied are stored anew.
	mid, err := repro.NewSession(
		repro.WithMachine(machine), repro.WithCheckpointAfter(4))
	if err != nil {
		log.Fatal(err)
	}
	m1Again, err := repro.LoadManifest(store, m1.Key())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mid.ResumeFrom(store, m1Again, program()); err != nil {
		log.Fatal(err)
	}
	m2, err := mid.SaveTo(store)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := store.Stats()
	if err != nil {
		log.Fatal(err)
	}
	parent, _ := m2.Parent()
	fmt.Printf("save 2: manifest %s… (seq %d, parent %s…)  +%d KiB unique, +%d KiB on disk\n",
		m2.Key().String()[:12], m2.Seq(), parent.String()[:12],
		(s2.LogicalSize-s1.LogicalSize)>>10, (s2.StoredSize-s1.StoredSize)>>10)

	// Resume the chained manifest in another fresh session: the result
	// is bit-identical to the uninterrupted run.
	got, err := session().ResumeFrom(store, m2, program())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed:       digest=%#x vt=%d\n", got.Ret, got.VT)
	if got.Ret != want.Ret || got.VT != want.VT || got.Insns != want.Insns {
		log.Fatal("resumed run diverged from the uninterrupted one")
	}

	// Garbage-collect with only the newest manifest as a root: its
	// parent chain stays reachable (manifests reference their parents),
	// so nothing the chain needs is deleted.
	cs, err := repro.CollectChunks(store, m2.Key())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gc(keep newest): kept %d chunks, deleted %d\n", cs.Live, cs.Removed)
	if _, err := repro.LoadImage(store, m2); err != nil {
		log.Fatal("chain broken by GC: ", err)
	}
	fmt.Println("bit-identical: checksum, virtual time and instruction counts all match")
}
