// Quickstart: the private workspace model in five minutes.
//
// Three demonstrations on a simulated Determinator machine:
//
//  1. the paper's §2.2 example — two threads concurrently run x = y and
//     y = x, and deterministically swap (a data race anywhere else);
//  2. parallel in-place work on a shared array with no copying, no
//     locking, and no possibility of a read/write race;
//  3. a genuine write/write race, which Determinator converts into a
//     reliably reported conflict instead of silent corruption.
//
// Run: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"os"

	repro "repro"
)

func main() {
	res := repro.Run(repro.Options{Kernel: repro.MachineConfig{CPUsPerNode: 4}}, demo)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "machine stopped:", res.Err)
		os.Exit(1)
	}
	fmt.Printf("done (deterministic virtual time: %d instructions)\n", res.VT)
}

func demo(rt *repro.RT) uint64 {
	env := rt.Env()

	// --- 1. The swap that would be a race anywhere else -----------------
	x := rt.Alloc(4, 0)
	y := rt.Alloc(4, 0)
	env.WriteU32(x, 111)
	env.WriteU32(y, 222)
	rt.Fork(0, func(t *repro.Thread) uint64 {
		t.Env().WriteU32(x, t.Env().ReadU32(y)) // x = y
		return 0
	})
	rt.Fork(1, func(t *repro.Thread) uint64 {
		t.Env().WriteU32(y, t.Env().ReadU32(x)) // y = x
		return 0
	})
	rt.Join(0)
	rt.Join(1)
	fmt.Printf("swap: x=%d y=%d (always swapped — each thread read the pre-fork value)\n",
		env.ReadU32(x), env.ReadU32(y))

	// --- 2. In-place parallel update, race-free by construction ---------
	const n = 1 << 16
	arr := rt.Alloc(4*n, 4096)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	env.WriteU32s(arr, vals)
	results, err := rt.ParallelDo(4, func(t *repro.Thread) uint64 {
		lo, hi := t.ID*n/4, (t.ID+1)*n/4
		buf := make([]uint32, hi-lo)
		t.Env().ReadU32s(arr+repro.Addr(4*lo), buf)
		var sum uint64
		for i := range buf {
			buf[i] = buf[i]*buf[i] + 1
			sum += uint64(buf[i])
		}
		t.Env().WriteU32s(arr+repro.Addr(4*lo), buf)
		return sum
	})
	if err != nil {
		panic(err)
	}
	var total uint64
	for _, r := range results {
		total += r
	}
	fmt.Printf("parallel map: 4 threads updated %d elements in place, checksum %d\n", n, total)

	// --- 3. A write/write race becomes a detected conflict --------------
	slot := rt.Alloc(4, 0)
	rt.Fork(0, func(t *repro.Thread) uint64 { t.Env().WriteU32(slot, 1); return 0 })
	rt.Fork(1, func(t *repro.Thread) uint64 { t.Env().WriteU32(slot, 2); return 0 })
	rt.Join(0)
	_, err = rt.Join(1)
	var conflict *repro.ConflictError
	if errors.As(err, &conflict) {
		fmt.Printf("race: both threads wrote the same word — detected deterministically: %v\n",
			conflict)
	} else {
		fmt.Println("BUG: conflict not detected")
	}
	return total
}
