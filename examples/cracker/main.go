// Cracker: the paper's md5 brute-force search (§6.2–6.3), distributed
// across a simulated cluster by space migration — the md5-tree pattern
// of Figure 11. The search program is written against plain logically
// shared memory; distribution is just a matter of forking workers whose
// home is another node, and the deterministic virtual-time model shows
// the resulting speedup.
//
// Run: go run ./examples/cracker [-nodes N] [-space SIZE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size (uniprocessor nodes)")
	space := flag.Int("space", 1<<15, "candidate space size")
	flag.Parse()

	target := workload.MD5Target(*space)
	digest := workload.MD5Candidate(target)
	fmt.Printf("searching %d candidates for digest %x...\n", *space, digest[:6])

	vt := func(n int) (int64, uint64) {
		var found uint64
		res := core.Run(core.Options{
			Kernel:     kernel.Config{Nodes: n, CPUsPerNode: 1},
			SharedSize: 1 << 20,
		}, func(rt *core.RT) uint64 {
			found = workload.MD5Tree(rt, n, *space)
			return found
		})
		if res.Status != kernel.StatusHalted {
			fmt.Fprintf(os.Stderr, "cluster run failed: %v %v\n", res.Status, res.Err)
			os.Exit(1)
		}
		return res.VT, found
	}

	single, found1 := vt(1)
	multi, foundN := vt(*nodes)
	if found1 != target || foundN != target {
		fmt.Fprintf(os.Stderr, "wrong answer: %d / %d, want %d\n", found1, foundN, target)
		os.Exit(1)
	}
	fmt.Printf("cracked: candidate %d (identical answer on 1 node and on %d nodes)\n",
		foundN, *nodes)
	fmt.Printf("1 node : %6.1fM virtual instructions\n", float64(single)/1e6)
	fmt.Printf("%d nodes: %6.1fM virtual instructions (speedup %.2fx)\n",
		*nodes, float64(multi)/1e6, float64(single)/float64(multi))
	fmt.Println("the workers share memory logically; the kernel migrated spaces and")
	fmt.Println("demand-paged their working sets across the simulated cluster (§3.3).")
}
