// Package repro is a from-scratch Go reproduction of Determinator, the
// operating system of "Efficient System-Enforced Deterministic
// Parallelism" (Aviram, Weng, Hu, Ford — OSDI 2010).
//
// The root package is a facade over the layered implementation:
//
//   - internal/vm      — software paged memory: COW, snapshots, byte-level merge
//   - internal/kernel  — spaces, Put/Get/Ret, instruction limits, migration,
//     devices, and the deterministic virtual-time cost model
//   - internal/core    — the private workspace model: fork/join threads,
//     barriers, deterministic allocation (the paper's §4.4)
//   - internal/fs      — replicated file system with versioned reconciliation
//   - internal/uproc   — Unix process emulation: fork/exec/wait, console I/O
//   - internal/dsched  — deterministic scheduling of legacy mutex/condvar code
//   - internal/trace   — record/replay of explicit nondeterministic inputs
//   - internal/workload, internal/baseline, internal/bench — the paper's
//     evaluation: benchmarks, comparison systems, experiment harness
//
// The quickest start:
//
//	res := repro.Run(repro.Options{}, func(rt *repro.RT) uint64 {
//	    x := rt.Alloc(4, 0)
//	    rt.Env().WriteU32(x, 1)
//	    rt.ParallelDo(4, func(t *repro.Thread) uint64 { ... })
//	    return uint64(rt.Env().ReadU32(x))
//	})
//
// Everything a program computes under this API is deterministic: results
// depend only on the program and its explicit inputs, never on scheduling.
package repro

import (
	"repro/internal/core"
	"repro/internal/dsched"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/uproc"
	"repro/internal/vm"
)

// Kernel layer.
type (
	// Machine is a simulated Determinator machine (or cluster).
	Machine = kernel.Machine
	// MachineConfig configures nodes, CPUs, cost model and devices.
	MachineConfig = kernel.Config
	// CostModel holds the virtual-time constants.
	CostModel = kernel.CostModel
	// Env is a space's handle to its private memory and the syscall API.
	Env = kernel.Env
	// Regs is a space's register state.
	Regs = kernel.Regs
	// PutOpts / GetOpts select syscall options (Table 2 of the paper).
	PutOpts = kernel.PutOpts
	// GetOpts selects Get options.
	GetOpts = kernel.GetOpts
	// RunResult reports a completed root program.
	RunResult = kernel.RunResult
	// Status reports why a space stopped.
	Status = kernel.Status
)

// Private workspace threading (the paper's primary contribution).
type (
	// RT is the user-level runtime: fork/join, barriers, allocation.
	RT = core.RT
	// Thread is a private-workspace thread handle.
	Thread = core.Thread
	// Options configures Run.
	Options = core.Options
	// ConflictError reports a write/write conflict found at join.
	ConflictError = core.ConflictError
)

// Unix emulation.
type (
	// Proc is an emulated Unix process.
	Proc = uproc.Proc
	// Program is an executable image for fork/exec.
	Program = uproc.Program
	// Registry maps program names to images.
	Registry = uproc.Registry
	// BootConfig configures a process-tree boot.
	BootConfig = uproc.BootConfig
)

// Supporting layers.
type (
	// FS is a handle on a replicated file system image.
	FS = fs.FS
	// Sched is the deterministic scheduler for legacy thread APIs.
	Sched = dsched.Sched
	// SchedThread is a thread handle under the deterministic scheduler.
	SchedThread = dsched.Thread
	// Mutex names a scheduler-managed mutex.
	Mutex = dsched.Mutex
	// Cond names a scheduler-managed condition variable.
	Cond = dsched.Cond
	// TraceLog records a run's explicit nondeterministic inputs.
	TraceLog = trace.Log
	// Addr is a 32-bit virtual address.
	Addr = vm.Addr
)

// NewMachine builds a simulated machine.
func NewMachine(cfg MachineConfig) *Machine { return kernel.New(cfg) }

// Run executes main as a deterministic parallel program on a fresh
// machine and returns the result.
func Run(opts Options, main func(rt *RT) uint64) RunResult { return core.Run(opts, main) }

// NewRT attaches a private-workspace runtime to a root environment,
// mapping the shared region (size 0 selects the default).
func NewRT(env *Env, sharedSize uint64) *RT { return core.New(env, sharedSize) }

// NewRegistry returns an empty program registry for Boot.
func NewRegistry() *Registry { return uproc.NewRegistry() }

// Boot runs a Unix-style process tree from the named init program.
func Boot(cfg BootConfig, entry string, args ...string) uproc.BootResult {
	return uproc.Boot(cfg, entry, args...)
}

// NewSched creates a deterministic scheduler for legacy mutex/condvar
// code in the master space managed by rt.
func NewSched(rt *RT, quantum int64) *Sched {
	return dsched.New(rt, dsched.Config{Quantum: quantum})
}

// RecordTrace instruments cfg so all nondeterministic device inputs are
// captured; ReplayTrace makes cfg reproduce a recorded log.
func RecordTrace(cfg *MachineConfig) *TraceLog { return trace.Record(cfg) }

// ReplayTrace configures cfg's devices to replay l.
func ReplayTrace(cfg *MachineConfig, l *TraceLog) { trace.Replay(cfg, l) }

// UnmarshalTrace parses a serialized trace log.
func UnmarshalTrace(data []byte) (*TraceLog, error) { return trace.Unmarshal(data) }
