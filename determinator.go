// Package repro is a from-scratch Go reproduction of Determinator, the
// operating system of "Efficient System-Enforced Deterministic
// Parallelism" (Aviram, Weng, Hu, Ford — OSDI 2010). Everything a
// program computes under this API is deterministic: results depend only
// on the program and its explicit inputs, never on scheduling.
//
// # Sessions
//
// The Session is the package's entry point: one builder that composes
// the machine (cluster shape, cost model, merge workers), the runtime
// (shared-region size, flat or sharded-tree collection), the
// deterministic scheduler's configuration, console I/O, and trace
// record/replay — the knobs the historical free functions Run, Boot,
// NewSched and RecordTrace each configured in isolation.
//
//	sess, err := repro.NewSession(
//	    repro.WithMachine(repro.MachineConfig{CPUsPerNode: 4}),
//	    repro.WithRecord(),
//	)
//	if err != nil {
//	    log.Fatal(err)
//	}
//	res := sess.Run(func(rt *repro.RT) uint64 {
//	    x := rt.Alloc(4, 0)
//	    rt.Env().WriteU32(x, 1)
//	    rt.ParallelDo(4, func(t *repro.Thread) uint64 { ... })
//	    return uint64(rt.Env().ReadU32(x))
//	})
//
// Sessions also own deterministic checkpoint/restore. A phased Program
// can be checkpointed at any phase barrier into an Image — a versioned
// serialization of the whole space tree (memory, snapshots, COW sharing
// and dirty tracking), every space's virtual time and traffic counters,
// the device cursors and the trace log so far — and resumed from that
// Image in a fresh Session or a fresh process:
//
//	img, _ := sess.RunToCheckpoint(prog, 2)     // run 2 phases, snapshot
//	data, _ := img.Bytes()                      // ship/store the image
//	img2, _ := repro.DecodeImage(data)
//	res, _ := sess2.Resume(img2, prog)          // bit-identical continuation
//
// The resumed run's checksums, conflict reports and virtual times are
// bit-identical to an uninterrupted run's, and a run that checkpoints is
// bit-identical to one that does not (checkpointing is a pure
// observation). See Session, Program and Image; examples/checkpoint is a
// runnable walkthrough.
//
// # Layers
//
// The root package is a facade over the layered implementation:
//
//   - internal/vm      — software paged memory: COW, snapshots, byte-level
//     merge, and the canonical forest serialization behind checkpoints
//   - internal/kernel  — spaces, Put/Get/Ret, instruction limits, migration,
//     devices, checkpoint/restore of space trees, and the deterministic
//     virtual-time cost model
//   - internal/core    — the private workspace model: fork/join threads,
//     barriers, deterministic allocation (the paper's §4.4)
//   - internal/fs      — replicated file system with versioned reconciliation
//   - internal/uproc   — Unix process emulation: fork/exec/wait, console I/O
//   - internal/dsched  — deterministic scheduling of legacy mutex/condvar code
//   - internal/trace   — record/replay of explicit nondeterministic inputs
//   - internal/workload, internal/baseline, internal/bench — the paper's
//     evaluation: benchmarks, comparison systems, experiment harness
//
// The pre-Session entry points (Run, Boot, NewSched, RecordTrace, …)
// remain as thin wrappers. Unlike before, they validate their inputs:
// values that used to be silently replaced by defaults (a negative
// quantum, negative worker counts) now surface as typed errors
// (*ConfigError, *SchedConfigError).
package repro

import (
	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/dsched"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/uproc"
	"repro/internal/vm"
)

// Kernel layer.
type (
	// Machine is a simulated Determinator machine (or cluster).
	Machine = kernel.Machine
	// MachineConfig configures nodes, CPUs, cost model and devices.
	MachineConfig = kernel.Config
	// CostModel holds the virtual-time constants.
	CostModel = kernel.CostModel
	// Env is a space's handle to its private memory and the syscall API.
	Env = kernel.Env
	// Regs is a space's register state.
	Regs = kernel.Regs
	// PutOpts / GetOpts select syscall options (Table 2 of the paper).
	PutOpts = kernel.PutOpts
	// GetOpts selects Get options.
	GetOpts = kernel.GetOpts
	// RunResult reports a completed root program.
	RunResult = kernel.RunResult
	// Status reports why a space stopped.
	Status = kernel.Status
)

// Checkpoint/restore (see Session).
type (
	// RTState is the runtime bookkeeping carried by an Image.
	RTState = core.RTState
	// SchedState is a deterministic scheduler's exported state, stashed
	// in an Image by Program.Snapshot and reattached with AttachSched.
	SchedState = dsched.State
	// NotQuiescentError reports a checkpoint attempted while a space was
	// suspended mid-execution.
	NotQuiescentError = kernel.NotQuiescentError
	// BadImageError reports a corrupt or truncated machine image.
	BadImageError = kernel.BadImageError
	// ImageVersionError reports a machine image from a newer format.
	ImageVersionError = kernel.ImageVersionError
	// ImageMismatchError reports a restore onto a machine whose
	// configuration differs from the checkpointed one.
	ImageMismatchError = kernel.ImageMismatchError
)

// Content-addressed checkpoint store (see Session.SaveTo/ResumeFrom).
type (
	// BlobStore is the pluggable chunk-store interface SaveTo targets.
	BlobStore = castore.BlobStore
	// ChunkStore extends BlobStore with enumeration and deletion — what
	// garbage collection needs.
	ChunkStore = castore.Store
	// ChunkKey is a chunk's SHA-256 content key.
	ChunkKey = castore.Key
	// MemStore is the in-memory chunk store.
	MemStore = castore.MemStore
	// DirStore is the on-disk (loose-object directory) chunk store.
	DirStore = castore.DirStore
	// BlobInfo describes one stored chunk.
	BlobInfo = castore.BlobInfo
	// StoreStats summarizes a chunk store's contents and traffic.
	StoreStats = castore.StoreStats
	// CollectStats reports one garbage collection run.
	CollectStats = castore.CollectStats
	// ChunkMissingError reports a referenced chunk absent from a store.
	ChunkMissingError = castore.ChunkMissingError
	// ChunkHashError reports a chunk whose bytes no longer match its key.
	ChunkHashError = castore.ChunkHashError
)

// NewMemStore returns an empty in-memory chunk store.
func NewMemStore() *MemStore { return castore.NewMemStore() }

// OpenDirStore opens (creating if needed) an on-disk chunk store.
func OpenDirStore(dir string) (*DirStore, error) { return castore.OpenDirStore(dir) }

// ParseChunkKey parses a hex chunk key (as printed by ChunkKey.String).
func ParseChunkKey(s string) (ChunkKey, error) { return castore.ParseKey(s) }

// CollectChunks removes every chunk in s not reachable from the given
// roots (manifest keys, typically the newest manifest of each chain to
// keep). A missing or damaged root aborts before anything is deleted.
func CollectChunks(s ChunkStore, roots ...ChunkKey) (CollectStats, error) {
	return castore.Collect(s, roots)
}

// Private workspace threading (the paper's primary contribution).
type (
	// RT is the user-level runtime: fork/join, barriers, allocation.
	RT = core.RT
	// Thread is a private-workspace thread handle.
	Thread = core.Thread
	// Options configures Run.
	Options = core.Options
	// ConflictError reports a write/write conflict found at join.
	ConflictError = core.ConflictError
)

// Unix emulation.
type (
	// Proc is an emulated Unix process.
	Proc = uproc.Proc
	// UnixProgram is an executable image for fork/exec (the name Program
	// now belongs to the Session's phased checkpointable programs).
	UnixProgram = uproc.Program
	// Registry maps program names to images.
	Registry = uproc.Registry
	// BootConfig configures a process-tree boot.
	BootConfig = uproc.BootConfig
	// UprocInitState is the init process's Go-side checkpoint state.
	UprocInitState = uproc.InitState
	// UprocStateError reports init-process state that cannot cross a
	// checkpoint image (uncollected children, live shadows).
	UprocStateError = uproc.StateError
)

// Supporting layers.
type (
	// FS is a handle on a replicated file system image.
	FS = fs.FS
	// Sched is the deterministic scheduler for legacy thread APIs.
	Sched = dsched.Sched
	// SchedConfig is the deterministic scheduler's full configuration.
	SchedConfig = dsched.Config
	// SchedConfigError reports an invalid scheduler configuration.
	SchedConfigError = dsched.BadConfigError
	// SchedThread is a thread handle under the deterministic scheduler.
	SchedThread = dsched.Thread
	// Mutex names a scheduler-managed mutex.
	Mutex = dsched.Mutex
	// Cond names a scheduler-managed condition variable.
	Cond = dsched.Cond
	// TraceLog records a run's explicit nondeterministic inputs.
	TraceLog = trace.Log
	// Addr is a 32-bit virtual address.
	Addr = vm.Addr
)

// NewMachine builds a simulated machine.
func NewMachine(cfg MachineConfig) *Machine { return kernel.New(cfg) }

// Run executes main as a deterministic parallel program on a fresh
// machine and returns the result. It is the legacy one-shot form of
// Session.Run, kept as a thin wrapper.
func Run(opts Options, main func(rt *RT) uint64) RunResult { return core.Run(opts, main) }

// NewRT attaches a private-workspace runtime to a root environment,
// mapping the shared region (size 0 selects the default). A region that
// cannot fit the address space panics with *ConfigError; NewRTWith is
// the non-panicking, full-options form.
func NewRT(env *Env, sharedSize uint64) *RT {
	rt, err := NewRTWith(env, Options{SharedSize: sharedSize})
	if err != nil {
		panic(err)
	}
	return rt
}

// NewRTWith attaches a runtime honoring every runtime option — the
// legacy NewRT accepted a size and silently ignored the rest of
// core.Options. Invalid values return *ConfigError, including a
// non-zero Options.Kernel: env's machine is already built, so machine
// configuration here can only be a mistake (build the machine through
// a Session or NewMachine instead).
func NewRTWith(env *Env, opts Options) (*RT, error) {
	if k := opts.Kernel; k.Nodes != 0 || k.CPUsPerNode != 0 || k.Cost != (CostModel{}) ||
		k.Console != nil || k.Clock != nil || k.Rand != nil || k.DisableROCache ||
		k.MergeWorkers != 0 {
		return nil, &ConfigError{Field: "Kernel",
			Reason: "machine configuration cannot apply to an already-built machine; use NewSession or NewMachine"}
	}
	if opts.SharedSize > maxSharedSize {
		return nil, &ConfigError{Field: "SharedSize",
			Reason: "region does not fit the address space above the shared base"}
	}
	rt := core.New(env, opts.SharedSize)
	rt.SetTreeJoin(opts.TreeJoin)
	return rt, nil
}

// NewRegistry returns an empty program registry for Boot.
func NewRegistry() *Registry { return uproc.NewRegistry() }

// Boot runs a Unix-style process tree from the named init program.
func Boot(cfg BootConfig, entry string, args ...string) uproc.BootResult {
	return uproc.Boot(cfg, entry, args...)
}

// NewSched creates a deterministic scheduler for legacy mutex/condvar
// code in the master space managed by rt. Quantum 0 selects the default;
// a negative quantum — which used to be silently replaced by the default
// — panics with *SchedConfigError. NewSchedWith is the non-panicking
// form and accepts the full SchedConfig, which this wrapper historically
// dropped.
func NewSched(rt *RT, quantum int64) *Sched {
	s, err := NewSchedWith(rt, SchedConfig{Quantum: quantum})
	if err != nil {
		panic(err)
	}
	return s
}

// NewSchedWith creates a deterministic scheduler from a full
// configuration, validating it (typed *SchedConfigError).
func NewSchedWith(rt *RT, cfg SchedConfig) (*Sched, error) {
	return dsched.NewChecked(rt, cfg)
}

// RecordTrace instruments cfg so all nondeterministic device inputs are
// captured; ReplayTrace makes cfg reproduce a recorded log. Sessions
// subsume both (WithRecord/WithReplay) and add mid-log resume.
func RecordTrace(cfg *MachineConfig) *TraceLog { return trace.Record(cfg) }

// ReplayTrace configures cfg's devices to replay l.
func ReplayTrace(cfg *MachineConfig, l *TraceLog) { trace.Replay(cfg, l) }

// UnmarshalTrace parses a serialized trace log.
func UnmarshalTrace(data []byte) (*TraceLog, error) { return trace.Unmarshal(data) }
